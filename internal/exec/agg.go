package exec

import (
	"fmt"
	"math"
	"sort"

	"s2db/internal/codec"
	"s2db/internal/core"
	"s2db/internal/types"
)

// AggFunc enumerates the supported aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	Count AggFunc = iota
	Sum
	Min
	Max
	Avg
)

// String returns the SQL-ish name of the aggregate function.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	}
	return fmt.Sprintf("AggFunc(%d)", uint8(f))
}

// AggSpec is one aggregate output: either over a plain column (Col) or a
// computed expression (Expr takes precedence when set). Computed
// expressions cover forms like sum(extendedprice * (1 - discount)).
type AggSpec struct {
	Func AggFunc
	Col  int
	// ColName, when non-empty, names the column instead of Col; it is
	// resolved against the table schema at execution time (ResolveAggSpecs).
	ColName string
	Expr    func(r types.Row) types.Value
	// ExprCols lists the columns Expr reads, enabling projection pushdown
	// in the general aggregation path; nil means "unknown" (materialize
	// every column).
	ExprCols []int
}

// aggGroup is one group's accumulated state: the cloned key values followed
// by one aggState per AggSpec. Shared between the unfused row-at-a-time
// paths and the fused kernels, which resolve groups through the same touch
// callback so creation order (and therefore output order) is identical.
type aggGroup struct {
	key    types.Row
	states []aggState
}

type aggState struct {
	count  int64
	sumI   int64
	sumF   float64
	minV   types.Value
	maxV   types.Value
	hasVal bool
}

func (a *aggState) add(v types.Value) {
	if v.IsNull {
		return
	}
	a.count++
	switch v.Type {
	case types.Int64:
		a.sumI += v.I
	case types.Float64:
		a.sumF += v.F
	}
	if !a.hasVal {
		a.minV, a.maxV = v, v
		a.hasVal = true
		return
	}
	if types.Compare(v, a.minV) < 0 {
		a.minV = v
	}
	if types.Compare(v, a.maxV) > 0 {
		a.maxV = v
	}
}

// addInt folds a non-null Int64 without boxing; state transitions are
// identical to add(types.NewInt(v)).
func (a *aggState) addInt(v int64) {
	a.count++
	a.sumI += v
	if !a.hasVal {
		a.minV, a.maxV = types.NewInt(v), types.NewInt(v)
		a.hasVal = true
		return
	}
	if v < a.minV.I {
		a.minV = types.NewInt(v)
	}
	if v > a.maxV.I {
		a.maxV = types.NewInt(v)
	}
}

// addIntRun folds n consecutive occurrences of a non-null Int64 exactly:
// integer sums commute, so runLen×value replaces n adds bit-for-bit.
func (a *aggState) addIntRun(v, n int64) {
	if n <= 0 {
		return
	}
	a.count += n
	a.sumI += v * n
	if !a.hasVal {
		a.minV, a.maxV = types.NewInt(v), types.NewInt(v)
		a.hasVal = true
		return
	}
	if v < a.minV.I {
		a.minV = types.NewInt(v)
	}
	if v > a.maxV.I {
		a.maxV = types.NewInt(v)
	}
}

// addFloat folds a non-null Float64 without boxing; identical to
// add(types.NewFloat(v)).
func (a *aggState) addFloat(v float64) {
	a.count++
	a.sumF += v
	if !a.hasVal {
		a.minV, a.maxV = types.NewFloat(v), types.NewFloat(v)
		a.hasVal = true
		return
	}
	if v < a.minV.F {
		a.minV = types.NewFloat(v)
	}
	if v > a.maxV.F {
		a.maxV = types.NewFloat(v)
	}
}

// addFloatRun folds n consecutive occurrences of a non-null Float64.
// Float addition is not associative, so the sum replays the n additions in
// order — the bits must match the unfused per-row fold — while MIN/MAX
// compare once per run.
func (a *aggState) addFloatRun(v float64, n int) {
	if n <= 0 {
		return
	}
	a.count += int64(n)
	for k := 0; k < n; k++ {
		a.sumF += v
	}
	if !a.hasVal {
		a.minV, a.maxV = types.NewFloat(v), types.NewFloat(v)
		a.hasVal = true
		return
	}
	if v < a.minV.F {
		a.minV = types.NewFloat(v)
	}
	if v > a.maxV.F {
		a.maxV = types.NewFloat(v)
	}
}

// addStr folds a non-null String without boxing; identical to
// add(types.NewString(v)) — strings contribute no sums.
func (a *aggState) addStr(v string) {
	a.count++
	if !a.hasVal {
		a.minV, a.maxV = types.NewString(v), types.NewString(v)
		a.hasVal = true
		return
	}
	if v < a.minV.S {
		a.minV = types.NewString(v)
	}
	if v > a.maxV.S {
		a.maxV = types.NewString(v)
	}
}

// merge folds another partial state into a.
func (a *aggState) merge(b *aggState) {
	if b.count == 0 {
		return
	}
	a.count += b.count
	a.sumI += b.sumI
	a.sumF += b.sumF
	if b.hasVal {
		if !a.hasVal {
			a.minV, a.maxV = b.minV, b.maxV
			a.hasVal = true
		} else {
			if types.Compare(b.minV, a.minV) < 0 {
				a.minV = b.minV
			}
			if types.Compare(b.maxV, a.maxV) > 0 {
				a.maxV = b.maxV
			}
		}
	}
}

func (a *aggState) result(f AggFunc, t types.ColType) types.Value {
	switch f {
	case Count:
		return types.NewInt(a.count)
	case Sum:
		if t == types.Int64 {
			return types.NewInt(a.sumI)
		}
		return types.NewFloat(a.sumF)
	case Min:
		if !a.hasVal {
			return types.Null(t)
		}
		return a.minV
	case Max:
		if !a.hasVal {
			return types.Null(t)
		}
		return a.maxV
	default: // Avg
		if a.count == 0 {
			return types.Null(types.Float64)
		}
		if t == types.Int64 {
			return types.NewFloat(float64(a.sumI) / float64(a.count))
		}
		return types.NewFloat(a.sumF / float64(a.count))
	}
}

// Aggregate runs a grouped aggregation over the filtered view. The result
// rows contain the group-by values followed by one value per AggSpec. With
// no group columns a single row is returned. Segment inputs use columnar
// access; buffer rows are folded in row-wise, so analytics always see data
// that has not been flushed yet (the HTAP property of §4).
func Aggregate(view *core.View, filter Node, groupCols []int, aggs []AggSpec, scan *Scan) []types.Row {
	if scan == nil {
		scan = NewScan(view, filter)
	}
	groups := map[string]*aggGroup{}
	// order tracks first-seen group keys so the output is deterministic for
	// a given view (scan order is deterministic: buffer, then segments).
	var order []*aggGroup
	var keyBuf []byte
	touch := func(key types.Row) *aggGroup {
		keyBuf = types.EncodeKey(keyBuf[:0], key...)
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &aggGroup{key: key.Clone(), states: make([]aggState, len(aggs))}
			groups[string(keyBuf)] = g
			order = append(order, g)
		}
		return g
	}
	resultType := make([]types.ColType, len(aggs))
	for ai, a := range aggs {
		if a.Expr == nil && a.Col >= 0 {
			resultType[ai] = view.Schema.Columns[a.Col].Type
		} else {
			resultType[ai] = types.Float64 // refined per value below
		}
	}

	// keyScratch is reused across rows: touch clones the key on first sight
	// of a group, so handing it a shared scratch row is safe and removes a
	// per-row allocation.
	keyScratch := make(types.Row, len(groupCols))
	addRow := func(r types.Row) {
		key := keyScratch
		for i, c := range groupCols {
			key[i] = r[c]
		}
		g := touch(key)
		for ai, a := range aggs {
			var v types.Value
			switch {
			case a.Func == Count && a.Expr == nil && a.Col < 0:
				v = types.NewInt(1)
			case a.Expr != nil:
				v = a.Expr(r)
				resultType[ai] = v.Type
			default:
				v = r[a.Col]
			}
			g.states[ai].add(v)
		}
	}

	scan.RunBuffer(func(r types.Row) bool { addRow(r); return true })
	segBody := func(ctx *SegContext, sel []int32) {
		seg := ctx.Meta.Seg
		// Encoded group-by (§2.1.2: "encoded execution" for group-by):
		// grouping by a dictionary-encoded string column aggregates per
		// dictionary code and maps codes to values once per segment.
		if len(groupCols) == 1 && allPlainAggs(aggs) {
			if d, ok := seg.Cols[groupCols[0]].Strs.(*codec.Dict); ok &&
				(seg.Cols[groupCols[0]].Nulls == nil) {
				if ctx.Stats != nil {
					ctx.Stats.EncodedFilters++ // counted with encoded ops
				}
				perCode := aggregateByDict(ctx, d, sel, aggs)
				for code, st := range perCode {
					if st == nil {
						continue
					}
					g := touch(types.Row{types.NewString(d.DictValue(code))})
					for ai := range aggs {
						g.states[ai].merge(&st[ai])
					}
				}
				return
			}
		}
		// Fast path: no grouping, no expressions — columnar fold.
		simple := len(groupCols) == 0
		for _, a := range aggs {
			if a.Expr != nil {
				simple = false
			}
		}
		if simple {
			g := touch(nil)
			for ai, a := range aggs {
				if a.Func == Count && a.Col < 0 {
					g.states[ai].count += int64(len(sel))
					continue
				}
				col := seg.Cols[a.Col]
				t := seg.Schema().Columns[a.Col].Type
				switch t {
				case types.Int64:
					vals := ctx.ints(a.Col)
					for _, i := range sel {
						if col.Nulls != nil && col.Nulls.Get(int(i)) {
							continue
						}
						g.states[ai].add(types.NewInt(vals[i]))
					}
				case types.Float64:
					raw := ctx.ints(a.Col)
					for _, i := range sel {
						if col.Nulls != nil && col.Nulls.Get(int(i)) {
							continue
						}
						g.states[ai].add(types.NewFloat(math.Float64frombits(uint64(raw[i]))))
					}
				default:
					for _, i := range sel {
						g.states[ai].add(seg.ValueAt(int(i), a.Col))
					}
				}
			}
			return
		}
		// General path: materialize rows lazily (late materialization: only
		// the columns the grouping and aggregates read decode, and for
		// dense selections each decodes once).
		_ = seg
		proj := aggProjection(groupCols, aggs)
		mat := ctx.Materializer(proj, len(sel)*4 >= ctx.Meta.Seg.NumRows)
		for _, i := range sel {
			addRow(mat(int(i)))
		}
	}
	if scan.fusedEnabled() {
		// Fused path: the filter phase delivers span-space selections and
		// each segment dispatches to a single-pass kernel when its shape and
		// encodings allow, falling back to the legacy body (on a flattened
		// selection) otherwise. Kernels accumulate into the same group table
		// in the same order, so results are byte-identical either way.
		fuser := newAggFuser(groupCols, aggs, touch, resultType)
		selBuf, spanBuf := getSel(0), getSpans()
		defer putSel(selBuf)
		defer putSpans(spanBuf)
		scan.runSegSel(func(ctx *SegContext, spans []Span, sel []int32) {
			if mode := fuser.classify(ctx); mode != fuseNone {
				if spans == nil {
					spans = selToSpans(sel, (*spanBuf)[:0])
					*spanBuf = spans[:0]
				}
				fuser.run(mode, ctx, spans)
				if ctx.Stats != nil {
					ctx.Stats.FusedAggSegs++
				}
				return
			}
			if sel == nil {
				if cap(*selBuf) < spanRows(spans) {
					*selBuf = make([]int32, 0, spanRows(spans))
				}
				sel = flattenSpans(spans, (*selBuf)[:0])
				*selBuf = sel[:0]
			}
			segBody(ctx, sel)
		})
	} else {
		scan.RunSegments(segBody)
	}

	out := make([]types.Row, 0, len(order))
	for _, g := range order {
		row := make(types.Row, 0, len(groupCols)+len(aggs))
		row = append(row, g.key...)
		for ai, a := range aggs {
			row = append(row, g.states[ai].result(a.Func, resultType[ai]))
		}
		out = append(out, row)
	}
	return out
}

// allPlainAggs reports whether every aggregate reads a plain column (no
// expressions), the precondition for encoded group-by.
func allPlainAggs(aggs []AggSpec) bool {
	for _, a := range aggs {
		if a.Expr != nil {
			return false
		}
	}
	return true
}

// aggregateByDict folds the selection into per-dictionary-code aggregate
// states. Grouping cost is one bit-packed code load per row; the string
// values are touched once per distinct value, not per row.
func aggregateByDict(ctx *SegContext, d *codec.Dict, sel []int32, aggs []AggSpec) [][]aggState {
	seg := ctx.Meta.Seg
	states := make([][]aggState, d.DictSize())
	for _, i := range sel {
		code := d.Code(int(i))
		st := states[code]
		if st == nil {
			st = make([]aggState, len(aggs))
			states[code] = st
		}
		for ai, a := range aggs {
			if a.Func == Count && a.Col < 0 {
				st[ai].count++
				continue
			}
			col := seg.Cols[a.Col]
			if col.Nulls != nil && col.Nulls.Get(int(i)) {
				continue
			}
			switch seg.Schema().Columns[a.Col].Type {
			case types.Int64:
				st[ai].add(types.NewInt(ctx.ints(a.Col)[i]))
			case types.Float64:
				st[ai].add(types.NewFloat(math.Float64frombits(uint64(ctx.ints(a.Col)[i]))))
			default:
				st[ai].add(types.NewString(ctx.strs(a.Col)[i]))
			}
		}
	}
	return states
}

// aggProjection returns the set of columns a grouped aggregation reads, or
// nil when an expression's column set is unknown.
func aggProjection(groupCols []int, aggs []AggSpec) []int {
	seen := map[int]bool{}
	var out []int
	add := func(c int) {
		if c >= 0 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, c := range groupCols {
		add(c)
	}
	for _, a := range aggs {
		if a.Expr != nil {
			if a.ExprCols == nil {
				return nil
			}
			for _, c := range a.ExprCols {
				add(c)
			}
			continue
		}
		add(a.Col)
	}
	return out
}

// SortKey orders result rows. Name, when non-empty, references the column
// by name and is resolved against the table schema (or the group-by output
// columns, for aggregate queries) at execution time.
type SortKey struct {
	Col  int
	Name string
	Desc bool
}

// SortRows sorts rows by the given keys.
func SortRows(rows []types.Row, keys []SortKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			c := types.Compare(rows[i][k.Col], rows[j][k.Col])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// Limit truncates rows to at most n.
func Limit(rows []types.Row, n int) []types.Row {
	if len(rows) > n {
		return rows[:n]
	}
	return rows
}
