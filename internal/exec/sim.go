package exec

import (
	"time"

	"s2db/internal/types"
)

// Throttle wraps a filter with a simulated per-segment read latency, the
// query-side counterpart of blob.Simulator: in the separated-storage
// deployment of §3 a leaf scan pays object-store latency per data file,
// and the fan-out scheduler exists to overlap those stalls across
// partitions. Benchmarks use Throttle to reproduce that shape on hardware
// where the scans themselves are CPU-bound.
type Throttle struct {
	// Inner is the wrapped filter; nil passes every row.
	Inner Node
	// PerSegment is slept once per segment evaluation.
	PerSegment time.Duration

	st nodeStats
}

// NewThrottle wraps inner with a simulated per-segment latency.
func NewThrottle(inner Node, perSegment time.Duration) *Throttle {
	return &Throttle{Inner: inner, PerSegment: perSegment}
}

func (t *Throttle) stats() *nodeStats { return &t.st }

// EvalSeg implements Node: sleep for the simulated read, then delegate.
func (t *Throttle) EvalSeg(ctx *SegContext, sel []int32, out []int32) []int32 {
	if t.PerSegment > 0 {
		time.Sleep(t.PerSegment)
	}
	if t.Inner == nil {
		return append(out, sel...)
	}
	return t.Inner.EvalSeg(ctx, sel, out)
}

// EvalRow implements Node. Buffer rows are in memory in every deployment
// mode, so no latency is simulated here.
func (t *Throttle) EvalRow(r types.Row) bool {
	if t.Inner == nil {
		return true
	}
	return t.Inner.EvalRow(r)
}
