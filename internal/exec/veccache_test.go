package exec

import (
	"sync"
	"testing"

	"s2db/internal/colstore"
	"s2db/internal/core"
	"s2db/internal/txn"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// newCachedTable builds the standard test table with a decoded-vector cache
// wired through core.Config, all rows flushed to segments.
func newCachedTable(t testing.TB, maxSegRows, rows int, cache *VecCache) *core.Table {
	t.Helper()
	s := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "grp", Type: types.String},
		types.Column{Name: "val", Type: types.Int64},
		types.Column{Name: "price", Type: types.Float64},
	)
	s.UniqueKey = []int{0}
	s.SortKey = 2
	cfg := core.Config{MaxSegmentRows: maxSegRows}
	if cache != nil {
		cfg.DecodedCache = cache
	}
	tbl, err := core.NewTable("t", s, cfg,
		core.NewCommitter(&txn.Oracle{}), wal.NewLog(), core.NewMemFiles())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, tbl, rows, true)
	return tbl
}

func TestVecCacheSingleFlightDecode(t *testing.T) {
	cache := NewVecCache(1 << 20)
	tbl := newCachedTable(t, 256, 256, cache)
	meta := tbl.Snapshot().Segs[0]

	const n = 16
	var wg sync.WaitGroup
	perStats := make([]ScanStats, n)
	vecs := make([][]int64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vecs[i] = cache.Ints(meta, 2, &perStats[i])
		}(i)
	}
	wg.Wait()

	var decodes, hits, misses, waits int64
	for i := range perStats {
		decodes += perStats[i].VecDecodes
		hits += perStats[i].VecCacheHits
		misses += perStats[i].VecCacheMisses
		waits += perStats[i].VecCacheWaits
	}
	if decodes != 1 || misses != 1 {
		t.Fatalf("decodes=%d misses=%d, want 1/1 (single-flight)", decodes, misses)
	}
	if hits+waits != n-1 {
		t.Fatalf("hits=%d waits=%d, want hits+waits=%d", hits, waits, n-1)
	}
	for i := range vecs {
		if len(vecs[i]) != meta.Seg.NumRows {
			t.Fatalf("goroutine %d got %d values, want %d", i, len(vecs[i]), meta.Seg.NumRows)
		}
		if &vecs[i][0] != &vecs[0][0] {
			t.Fatal("goroutines received different vectors for the same key")
		}
	}
}

func TestVecCacheEvictionBounded(t *testing.T) {
	// Budget far smaller than the decoded working set: every segment holds
	// 64 rows => 512 bytes per int vector; cap at ~3 vectors.
	cache := NewVecCache(1600)
	tbl := newCachedTable(t, 64, 640, cache)
	view := tbl.Snapshot()
	var st ScanStats
	for _, m := range view.Segs {
		cache.Ints(m, 0, &st)
		cache.Ints(m, 2, &st)
	}
	s := cache.Stats()
	if s.Bytes > 1600 {
		t.Fatalf("cache holds %d bytes, budget 1600", s.Bytes)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions despite pressure")
	}
	if s.Entries == 0 {
		t.Fatal("cache empty after decodes that fit the budget")
	}
}

func TestVecCacheOversizedVectorNotInstalled(t *testing.T) {
	cache := NewVecCache(8) // smaller than any decoded vector
	tbl := newCachedTable(t, 64, 64, cache)
	meta := tbl.Snapshot().Segs[0]
	v := cache.Ints(meta, 2, nil)
	if len(v) != meta.Seg.NumRows {
		t.Fatalf("got %d values, want %d", len(v), meta.Seg.NumRows)
	}
	s := cache.Stats()
	if s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("oversized vector installed: %+v", s)
	}
	// The key must not stay registered: the next lookup decodes again.
	var st ScanStats
	cache.Ints(meta, 2, &st)
	if st.VecCacheMisses != 1 || st.VecDecodes != 1 {
		t.Fatalf("second lookup after oversized publish: %+v", st)
	}
}

func TestVecCacheAdmissionFilterProtectsHotSet(t *testing.T) {
	// Budget holds the whole hot set comfortably: 64-row segments decode to
	// 512-byte int vectors.
	cache := NewVecCache(1 << 14)
	tbl := newCachedTable(t, 64, 512, cache)
	view := tbl.Snapshot()

	// Warm the hot set.
	var st ScanStats
	for _, m := range view.Segs {
		cache.Ints(m, 2, &st)
	}
	hot := cache.Stats()
	if hot.Entries != len(view.Segs) || hot.Evictions != 0 {
		t.Fatalf("hot set did not fully install: %+v", hot)
	}

	// A near-budget wide-string vector must be rejected by the size-class
	// admission filter instead of evicting the hot set.
	e, owner := cache.acquire(vecKey{seg: view.Segs[0].Seg, col: 1}, nil)
	if !owner {
		t.Fatal("synthetic wide vector should own its decode")
	}
	e.strs = []string{"wide"}
	cache.publish(e, int64(cache.maxBytes)-64, nil)

	s := cache.Stats()
	if s.AdmissionRejects != 1 {
		t.Fatalf("admission rejects = %d, want 1", s.AdmissionRejects)
	}
	if s.Entries != hot.Entries || s.Evictions != 0 {
		t.Fatalf("oversized insert disturbed the hot set: %+v (was %+v)", s, hot)
	}

	// The hot set must still be resident: re-reads hit without decoding.
	var rest ScanStats
	for _, m := range view.Segs {
		cache.Ints(m, 2, &rest)
	}
	if rest.VecDecodes != 0 || rest.VecCacheMisses != 0 {
		t.Fatalf("hot set was evicted by rejected insert: %+v", rest)
	}

	// The rejected key must not stay registered: a later lookup decodes
	// fresh rather than waiting on a phantom in-flight entry.
	var again ScanStats
	cache.Strs(view.Segs[0], 1, &again)
	if again.VecCacheMisses != 1 || again.VecDecodes != 1 {
		t.Fatalf("rejected key stayed registered: %+v", again)
	}
}

func TestVecCacheInvalidateMidDecode(t *testing.T) {
	cache := NewVecCache(1 << 20)
	tbl := newCachedTable(t, 128, 128, cache)
	meta := tbl.Snapshot().Segs[0]
	k := vecKey{seg: meta.Seg, col: 2}

	e, owner := cache.acquire(k, nil)
	if !owner {
		t.Fatal("first acquire should own the decode")
	}
	// A merge retires the segment while the decode is in flight.
	cache.InvalidateSegment(meta.Seg)
	e.ints = decodeInts(meta, 2, nil)
	cache.publish(e, 8*int64(cap(e.ints)), nil)

	s := cache.Stats()
	if s.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", s.Invalidations)
	}
	if s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("invalidated in-flight entry was installed: %+v", s)
	}
	// Waiters that grabbed e before the invalidation still get the vector.
	<-e.ready
	if len(e.ints) != meta.Seg.NumRows {
		t.Fatal("in-flight waiters lost the decoded payload")
	}
}

func TestVecCacheInvalidateRacesReaders(t *testing.T) {
	cache := NewVecCache(1 << 20)
	tbl := newCachedTable(t, 64, 512, cache)
	view := tbl.Snapshot()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, m := range view.Segs {
					v := cache.Ints(m, 2, nil)
					if len(v) != m.Seg.NumRows {
						t.Errorf("short vector: %d != %d", len(v), m.Seg.NumRows)
						return
					}
					s := cache.Strs(m, 1, nil)
					if len(s) != m.Seg.NumRows {
						t.Errorf("short string vector: %d != %d", len(s), m.Seg.NumRows)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		for _, m := range view.Segs {
			cache.InvalidateSegment(m.Seg)
		}
	}
	close(stop)
	wg.Wait()
}

func TestScanWarmCacheSkipsDecodes(t *testing.T) {
	cache := NewVecCache(1 << 20)
	tbl := newCachedTable(t, 64, 500, cache)
	view := tbl.Snapshot()
	aggs := []AggSpec{{Func: Sum, Col: 2}}

	cold := NewScan(view, nil)
	first := Aggregate(view, nil, nil, aggs, cold)
	if cold.Stats.VecDecodes == 0 || cold.Stats.VecCacheMisses == 0 {
		t.Fatalf("cold scan did not populate the cache: %+v", cold.Stats)
	}

	warm := NewScan(view, nil)
	second := Aggregate(view, nil, nil, aggs, warm)
	if warm.Stats.VecDecodes != 0 {
		t.Fatalf("warm scan decoded %d columns, want 0: %+v", warm.Stats.VecDecodes, warm.Stats)
	}
	if warm.Stats.VecCacheHits == 0 {
		t.Fatalf("warm scan saw no cache hits: %+v", warm.Stats)
	}
	if first[0][0] != second[0][0] {
		t.Fatalf("cached scan changed the result: %v vs %v", first[0][0], second[0][0])
	}

	// Disabling the cache on a scan falls back to private decodes.
	off := NewScan(view, nil)
	off.DisableVectorCache = true
	Aggregate(view, nil, nil, aggs, off)
	if off.Stats.VecDecodes == 0 || off.Stats.VecCacheHits != 0 {
		t.Fatalf("DisableVectorCache scan still used the cache: %+v", off.Stats)
	}
}

func TestParallelScansShareCache(t *testing.T) {
	cache := NewVecCache(1 << 20)
	tbl := newCachedTable(t, 64, 400, cache)
	view := tbl.Snapshot()
	aggs := []AggSpec{{Func: Sum, Col: 2}}

	const n = 8
	var wg sync.WaitGroup
	perStats := make([]ScanStats, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scan := NewScan(view, nil)
			Aggregate(view, nil, nil, aggs, scan)
			perStats[i] = scan.Stats
		}(i)
	}
	wg.Wait()
	var decodes int64
	for i := range perStats {
		decodes += perStats[i].VecDecodes
	}
	// Single-flight: every (segment, column) decodes exactly once no matter
	// how many scans raced on it.
	want := int64(len(view.Segs))
	if decodes != want {
		t.Fatalf("parallel scans decoded %d vectors, want %d", decodes, want)
	}
}

// recordingCache records invalidated segments, standing in for the real
// cache in the merge-invalidation test.
type recordingCache struct {
	mu   sync.Mutex
	segs []*colstore.Segment
}

func (r *recordingCache) InvalidateSegment(seg *colstore.Segment) {
	r.mu.Lock()
	r.segs = append(r.segs, seg)
	r.mu.Unlock()
}

func TestMergeInvalidatesRetiredSegments(t *testing.T) {
	rec := &recordingCache{}
	s := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "grp", Type: types.String},
		types.Column{Name: "val", Type: types.Int64},
		types.Column{Name: "price", Type: types.Float64},
	)
	s.UniqueKey = []int{0}
	s.SortKey = 2
	tbl, err := core.NewTable("t", s, core.Config{MaxSegmentRows: 64, DecodedCache: rec},
		core.NewCommitter(&txn.Oracle{}), wal.NewLog(), core.NewMemFiles())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, tbl, 512, true)
	before := tbl.Snapshot().Segs
	if len(before) < 2 {
		t.Fatalf("need multiple segments to merge, got %d", len(before))
	}
	if !tbl.Merge() {
		t.Fatal("merge did not run")
	}
	rec.mu.Lock()
	invalidated := len(rec.segs)
	rec.mu.Unlock()
	if invalidated == 0 {
		t.Fatal("merge retired segments without invalidating the vector cache")
	}
}

func TestVecCachePeekAndSegmentHeat(t *testing.T) {
	cache := NewVecCache(1 << 20)
	tbl := newCachedTable(t, 256, 256, cache)
	meta := tbl.Snapshot().Segs[0]

	// Warm column 2 with one miss + two hits.
	v := cache.Ints(meta, 2, nil)
	cache.Ints(meta, 2, nil)
	cache.Ints(meta, 2, nil)

	// Peek returns the very same resident vector without counting a hit.
	before := cache.Stats()
	pv, ok := cache.PeekInts(meta.Seg, 2)
	if !ok || &pv[0] != &v[0] {
		t.Fatalf("PeekInts: ok=%v, vector shared=%v", ok, ok && &pv[0] == &v[0])
	}
	if _, ok := cache.PeekInts(meta.Seg, 0); ok {
		t.Fatal("PeekInts hit a column that was never decoded")
	}
	if _, ok := cache.PeekStrs(meta.Seg, 1); ok {
		t.Fatal("PeekStrs hit a column that was never decoded")
	}
	after := cache.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("Peek perturbed stats: %+v -> %+v", before, after)
	}

	bytes, hits := cache.SegmentHeat(meta.Seg)
	if bytes <= 0 {
		t.Fatalf("SegmentHeat bytes = %d, want > 0", bytes)
	}
	if hits != 2 {
		t.Fatalf("SegmentHeat hits = %d, want 2 (peeks must not count)", hits)
	}

	// Cold segment: zero heat. Nil cache: everything degrades safely.
	other := tbl.Snapshot().Segs[len(tbl.Snapshot().Segs)-1]
	if other.Seg != meta.Seg {
		if b, h := cache.SegmentHeat(other.Seg); b != 0 || h != 0 {
			t.Fatalf("cold segment heat = (%d, %d), want (0, 0)", b, h)
		}
	}
	var nilCache *VecCache
	if _, ok := nilCache.PeekInts(meta.Seg, 2); ok {
		t.Fatal("nil cache PeekInts returned ok")
	}
	if b, h := nilCache.SegmentHeat(meta.Seg); b != 0 || h != 0 {
		t.Fatal("nil cache SegmentHeat nonzero")
	}
}

func TestVecCacheInvalidateDropsHeat(t *testing.T) {
	cache := NewVecCache(1 << 20)
	tbl := newCachedTable(t, 256, 256, cache)
	meta := tbl.Snapshot().Segs[0]
	cache.Ints(meta, 2, nil)
	cache.Ints(meta, 2, nil)
	cache.InvalidateSegment(meta.Seg)
	if b, h := cache.SegmentHeat(meta.Seg); b != 0 || h != 0 {
		t.Fatalf("heat survived invalidation: (%d, %d)", b, h)
	}
}
