package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"s2db/internal/core"
	"s2db/internal/txn"
	"s2db/internal/types"
	"s2db/internal/vector"
	"s2db/internal/wal"
)

// newTable builds a test table: id (unique), grp (indexed string),
// val (int), price (float).
func newTable(t testing.TB, maxSegRows int) *core.Table {
	t.Helper()
	s := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "grp", Type: types.String},
		types.Column{Name: "val", Type: types.Int64},
		types.Column{Name: "price", Type: types.Float64},
	)
	s.UniqueKey = []int{0}
	s.SecondaryKeys = [][]int{{1}}
	s.SortKey = 2
	tbl, err := core.NewTable("t", s, core.Config{MaxSegmentRows: maxSegRows},
		core.NewCommitter(&txn.Oracle{}), wal.NewLog(), core.NewMemFiles())
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// fill inserts n rows: grp cycles g0..g4, val = i%100, price = i*0.5; half
// flushed to segments, half left in buffer when split is true.
func fill(t testing.TB, tbl *core.Table, n int, flushAll bool) {
	t.Helper()
	rows := make([]types.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("g%d", i%5)),
			types.NewInt(int64(i % 100)),
			types.NewFloat(float64(i) * 0.5),
		})
	}
	split := n / 2
	if flushAll {
		split = n
	}
	if err := tbl.BulkLoad(rows[:split]); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[split:] {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
}

func scalarCount(tbl *core.Table, pred func(types.Row) bool) int64 {
	var n int64
	view := tbl.Snapshot()
	view.ScanBuffer(func(r types.Row) bool {
		if pred(r) {
			n++
		}
		return true
	})
	for _, m := range view.Segs {
		for i := 0; i < m.Seg.NumRows; i++ {
			if !m.Deleted.Get(i) && pred(m.Seg.RowAt(i)) {
				n++
			}
		}
	}
	return n
}

func TestScanLeafFiltersMatchScalar(t *testing.T) {
	tbl := newTable(t, 64)
	fill(t, tbl, 500, false)
	cases := []struct {
		name string
		node Node
		pred func(types.Row) bool
	}{
		{"int-lt", NewLeaf(2, vector.Lt, types.NewInt(30)), func(r types.Row) bool { return r[2].I < 30 }},
		{"int-eq", NewLeaf(2, vector.Eq, types.NewInt(7)), func(r types.Row) bool { return r[2].I == 7 }},
		{"str-eq", NewLeaf(1, vector.Eq, types.NewString("g3")), func(r types.Row) bool { return r[1].S == "g3" }},
		{"float-ge", NewLeaf(3, vector.Ge, types.NewFloat(100)), func(r types.Row) bool { return r[3].F >= 100 }},
		{"in-list", NewIn(2, []types.Value{types.NewInt(1), types.NewInt(2)}), func(r types.Row) bool { return r[2].I == 1 || r[2].I == 2 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := NewScan(tbl.Snapshot(), c.node).Count()
			want := scalarCount(tbl, c.pred)
			if got != want {
				t.Fatalf("Count = %d, want %d", got, want)
			}
		})
	}
}

func TestScanAndOrTrees(t *testing.T) {
	tbl := newTable(t, 64)
	fill(t, tbl, 600, false)
	node := NewAnd(
		NewLeaf(2, vector.Ge, types.NewInt(10)),
		NewOr(
			NewLeaf(1, vector.Eq, types.NewString("g1")),
			NewLeaf(1, vector.Eq, types.NewString("g2")),
		),
		NewLeaf(3, vector.Lt, types.NewFloat(250)),
	)
	pred := func(r types.Row) bool {
		return r[2].I >= 10 && (r[1].S == "g1" || r[1].S == "g2") && r[3].F < 250
	}
	// Run several times so adaptive reordering kicks in and stays correct.
	for pass := 0; pass < 3; pass++ {
		got := NewScan(tbl.Snapshot(), node).Count()
		want := scalarCount(tbl, pred)
		if got != want {
			t.Fatalf("pass %d: Count = %d, want %d", pass, got, want)
		}
	}
}

func TestSegmentSkippingViaIndex(t *testing.T) {
	tbl := newTable(t, 32)
	// Bulk load in group-clustered batches so each segment holds one group.
	for g := 0; g < 5; g++ {
		rows := make([]types.Row, 32)
		for i := range rows {
			rows[i] = types.Row{
				types.NewInt(int64(g*1000 + i)),
				types.NewString(fmt.Sprintf("g%d", g)),
				types.NewInt(int64(i)),
				types.NewFloat(1),
			}
		}
		if err := tbl.BulkLoad(rows); err != nil {
			t.Fatal(err)
		}
	}
	scan := NewScan(tbl.Snapshot(), NewLeaf(1, vector.Eq, types.NewString("g2")))
	n := scan.Count()
	if n != 32 {
		t.Fatalf("Count = %d", n)
	}
	if scan.Stats.SegmentsSkipped != 4 || scan.Stats.SegmentsScanned != 1 {
		t.Fatalf("skipped %d scanned %d, want 4/1", scan.Stats.SegmentsSkipped, scan.Stats.SegmentsScanned)
	}
	if scan.Stats.GlobalIndexProbes == 0 {
		t.Fatal("global index not consulted")
	}
}

func TestZoneMapSkipping(t *testing.T) {
	tbl := newTable(t, 32)
	// Sort key is val; bulk loads create val-clustered segments.
	for b := 0; b < 4; b++ {
		rows := make([]types.Row, 32)
		for i := range rows {
			rows[i] = types.Row{
				types.NewInt(int64(b*32 + i)),
				types.NewString("g"),
				types.NewInt(int64(b*1000 + i)),
				types.NewFloat(1),
			}
		}
		tbl.BulkLoad(rows)
	}
	scan := NewScan(tbl.Snapshot(), NewLeaf(2, vector.Lt, types.NewInt(100)))
	if n := scan.Count(); n != 32 {
		t.Fatalf("Count = %d", n)
	}
	if scan.Stats.SegmentsSkipped != 3 {
		t.Fatalf("zone maps skipped %d segments, want 3", scan.Stats.SegmentsSkipped)
	}
}

func TestInListDynamicIndexDisable(t *testing.T) {
	tbl := newTable(t, 32)
	fill(t, tbl, 128, true)
	// A huge IN list must not go through the index (probe cost too high).
	var vals []types.Value
	for i := 0; i < 1000; i++ {
		vals = append(vals, types.NewString(fmt.Sprintf("g%d", i)))
	}
	scan := NewScan(tbl.Snapshot(), NewIn(1, vals))
	scan.Count()
	if scan.Stats.GlobalIndexProbes != 0 {
		t.Fatalf("index used for oversized IN list (%d probes)", scan.Stats.GlobalIndexProbes)
	}
}

func TestEncodedFilterUsedOnDictColumn(t *testing.T) {
	tbl := newTable(t, 256)
	fill(t, tbl, 512, true)
	// Non-equality string predicate: index can't help, dict encoding can.
	scan := NewScan(tbl.Snapshot(), NewLeaf(1, vector.Gt, types.NewString("g2")).ForceEncoded())
	got := scan.Count()
	want := scalarCount(tbl, func(r types.Row) bool { return r[1].S > "g2" })
	if got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	if scan.Stats.EncodedFilters == 0 {
		t.Fatal("encoded filter not used on dictionary column")
	}
}

func TestForceRegularMatchesEncoded(t *testing.T) {
	tbl := newTable(t, 256)
	fill(t, tbl, 512, true)
	pred := NewLeaf(1, vector.Eq, types.NewString("g1")).ForceRegular()
	scanReg := NewScan(tbl.Snapshot(), pred)
	scanReg.DisableIndexSkipping = true
	gotReg := scanReg.Count()
	scanEnc := NewScan(tbl.Snapshot(), NewLeaf(1, vector.Eq, types.NewString("g1")).ForceEncoded())
	scanEnc.DisableIndexSkipping = true
	if gotEnc := scanEnc.Count(); gotEnc != gotReg {
		t.Fatalf("encoded %d != regular %d", gotEnc, gotReg)
	}
	if scanReg.Stats.RegularFilters == 0 {
		t.Fatal("regular strategy not used when forced")
	}
}

func TestAggregateSimple(t *testing.T) {
	tbl := newTable(t, 64)
	fill(t, tbl, 200, false)
	rows := Aggregate(tbl.Snapshot(), nil, nil, []AggSpec{
		{Func: Count, Col: -1},
		{Func: Sum, Col: 2},
		{Func: Min, Col: 2},
		{Func: Max, Col: 2},
		{Func: Avg, Col: 3},
	}, nil)
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	var wantSum, wantN int64
	var wantF float64
	for i := 0; i < 200; i++ {
		wantN++
		wantSum += int64(i % 100)
		wantF += float64(i) * 0.5
	}
	if r[0].I != wantN || r[1].I != wantSum {
		t.Fatalf("count/sum = %v/%v", r[0], r[1])
	}
	if r[2].I != 0 || r[3].I != 99 {
		t.Fatalf("min/max = %v/%v", r[2], r[3])
	}
	if av := r[4].F; av < wantF/200-0.001 || av > wantF/200+0.001 {
		t.Fatalf("avg = %v", av)
	}
}

func TestAggregateGroupByWithExprAndFilter(t *testing.T) {
	tbl := newTable(t, 64)
	fill(t, tbl, 300, false)
	filter := NewLeaf(2, vector.Lt, types.NewInt(50))
	rows := Aggregate(tbl.Snapshot(), filter, []int{1}, []AggSpec{
		{Func: Count, Col: -1},
		{Func: Sum, Expr: func(r types.Row) types.Value { return types.NewFloat(r[3].F * 2) }},
	}, nil)
	if len(rows) != 5 {
		t.Fatalf("got %d groups", len(rows))
	}
	// Check one group against scalar computation.
	for _, r := range rows {
		g := r[0].S
		var wantN int64
		var wantS float64
		scalarCount(tbl, func(row types.Row) bool {
			if row[1].S == g && row[2].I < 50 {
				wantN++
				wantS += row[3].F * 2
			}
			return false
		})
		if r[1].I != wantN {
			t.Fatalf("group %s count = %d, want %d", g, r[1].I, wantN)
		}
		if d := r[2].F - wantS; d < -0.01 || d > 0.01 {
			t.Fatalf("group %s sum = %f, want %f", g, r[2].F, wantS)
		}
	}
}

func TestSortAndLimit(t *testing.T) {
	rows := []types.Row{
		{types.NewInt(3), types.NewString("c")},
		{types.NewInt(1), types.NewString("b")},
		{types.NewInt(1), types.NewString("a")},
		{types.NewInt(2), types.NewString("d")},
	}
	SortRows(rows, []SortKey{{Col: 0}, {Col: 1, Desc: true}})
	if rows[0][1].S != "b" || rows[1][1].S != "a" || rows[3][0].I != 3 {
		t.Fatalf("sorted = %v", rows)
	}
	if got := Limit(rows, 2); len(got) != 2 {
		t.Fatalf("Limit = %v", got)
	}
}

func TestEquiJoinIndexVsHashAgree(t *testing.T) {
	tbl := newTable(t, 64)
	fill(t, tbl, 400, false)
	// Build side: 3 groups.
	build := []types.Row{
		{types.NewString("g1"), types.NewInt(100)},
		{types.NewString("g4"), types.NewInt(400)},
	}
	count := func(mode JoinMode) (int, bool) {
		n := 0
		var stats ScanStats
		used := EquiJoin(build, []int{0}, tbl.Snapshot(), []int{1}, nil, mode, &stats,
			func(b, p types.Row) bool { n++; return true })
		return n, used
	}
	nIdx, usedIdx := count(JoinForceIndex)
	nHash, usedHash := count(JoinForceHash)
	if !usedIdx || usedHash {
		t.Fatalf("join paths wrong: idx=%v hash=%v", usedIdx, usedHash)
	}
	if nIdx != nHash {
		t.Fatalf("index join %d != hash join %d", nIdx, nHash)
	}
	want := int(scalarCount(tbl, func(r types.Row) bool { return r[1].S == "g1" || r[1].S == "g4" }))
	if nIdx != want {
		t.Fatalf("join rows = %d, want %d", nIdx, want)
	}
}

func TestEquiJoinAutoFallsBackOnLargeBuild(t *testing.T) {
	tbl := newTable(t, 64)
	fill(t, tbl, 100, true)
	// Build side nearly as large as probe side: auto mode must fall back.
	var build []types.Row
	for i := 0; i < 90; i++ {
		build = append(build, types.Row{types.NewString(fmt.Sprintf("g%d", i))})
	}
	var stats ScanStats
	used := EquiJoin(build, []int{0}, tbl.Snapshot(), []int{1}, nil, JoinAuto, &stats,
		func(b, p types.Row) bool { return true })
	if used {
		t.Fatal("join index filter should have been dynamically disabled")
	}
	if stats.JoinIndexFallbacks != 1 {
		t.Fatalf("fallbacks = %d", stats.JoinIndexFallbacks)
	}
}

func TestScanSeesBufferAndSegmentsConsistently(t *testing.T) {
	tbl := newTable(t, 32)
	fill(t, tbl, 100, false) // half segments, half buffer
	total := NewScan(tbl.Snapshot(), nil).Count()
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
	// Delete some rows, scan again at old and new snapshots.
	view := tbl.Snapshot()
	tbl.DeleteWhere(core.Where{Col: -1, Pred: func(r types.Row) bool { return r[0].I < 10 }})
	if n := NewScan(view, nil).Count(); n != 100 {
		t.Fatalf("old snapshot count = %d", n)
	}
	if n := NewScan(tbl.Snapshot(), nil).Count(); n != 90 {
		t.Fatalf("new snapshot count = %d", n)
	}
}

func TestQuickFilterTreeRandom(t *testing.T) {
	tbl := newTable(t, 64)
	fill(t, tbl, 300, false)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		op := vector.CmpOp(rng.Intn(6))
		cut := rng.Int63n(100)
		g := fmt.Sprintf("g%d", rng.Intn(5))
		node := NewAnd(
			NewLeaf(2, op, types.NewInt(cut)),
			NewLeaf(1, vector.Eq, types.NewString(g)),
		)
		got := NewScan(tbl.Snapshot(), node).Count()
		want := scalarCount(tbl, func(r types.Row) bool {
			return vector.CmpInt(r[2].I, op, cut) && r[1].S == g
		})
		if got != want {
			t.Fatalf("trial %d (op=%v cut=%d g=%s): %d != %d", trial, op, cut, g, got, want)
		}
	}
}

func TestEncodedGroupByMatchesGeneralPath(t *testing.T) {
	tbl := newTable(t, 256)
	fill(t, tbl, 1024, true) // grp is dictionary-encoded in segments
	// Encoded group-by path (plain aggs, single dict group column).
	fast := Aggregate(tbl.Snapshot(), nil, []int{1}, []AggSpec{
		{Func: Count, Col: -1},
		{Func: Sum, Col: 2},
		{Func: Min, Col: 0},
		{Func: Max, Col: 0},
		{Func: Avg, Col: 3},
	}, nil)
	// Force the general path with a no-op expression aggregate appended.
	slow := Aggregate(tbl.Snapshot(), nil, []int{1}, []AggSpec{
		{Func: Count, Col: -1},
		{Func: Sum, Col: 2},
		{Func: Min, Col: 0},
		{Func: Max, Col: 0},
		{Func: Avg, Col: 3},
		{Func: Sum, Expr: func(r types.Row) types.Value { return types.NewInt(0) }},
	}, nil)
	if len(fast) != len(slow) {
		t.Fatalf("group counts differ: %d vs %d", len(fast), len(slow))
	}
	index := map[string]types.Row{}
	for _, r := range slow {
		index[r[0].S] = r
	}
	for _, r := range fast {
		want := index[r[0].S]
		if want == nil {
			t.Fatalf("group %s missing from general path", r[0].S)
		}
		for c := 1; c <= 5; c++ {
			a, b := r[c], want[c]
			if a.Type == types.Float64 {
				if d := a.F - b.F; d < -1e-9 || d > 1e-9 {
					t.Fatalf("group %s col %d: %v vs %v", r[0].S, c, a, b)
				}
				continue
			}
			if !types.Equal(a, b) {
				t.Fatalf("group %s col %d: %v vs %v", r[0].S, c, a, b)
			}
		}
	}
	// And the encoded path was actually taken.
	s2 := NewScan(tbl.Snapshot(), nil)
	Aggregate(tbl.Snapshot(), nil, []int{1}, []AggSpec{{Func: Count, Col: -1}}, s2)
	if s2.Stats.EncodedFilters == 0 {
		t.Fatal("encoded group-by not used on dictionary column")
	}
}
