package exec

import (
	"fmt"
	"strings"

	"s2db/internal/types"
	"s2db/internal/vector"
)

// NamedLeaf is a comparison clause whose column is referenced by name
// rather than ordinal. It is resolved against the table schema at
// execution time (ResolveNames); evaluating an unresolved NamedLeaf is a
// programming error and panics.
type NamedLeaf struct {
	Name string
	Op   vector.CmpOp
	Val  types.Value
	// In, when non-empty, makes the clause an IN-list (Op ignored).
	In []types.Value

	st nodeStats
}

// NewNamedLeaf returns a comparison clause on a named column.
func NewNamedLeaf(name string, op vector.CmpOp, val types.Value) *NamedLeaf {
	return &NamedLeaf{Name: name, Op: op, Val: val}
}

// NewNamedIn returns an IN-list clause on a named column.
func NewNamedIn(name string, vals []types.Value) *NamedLeaf {
	return &NamedLeaf{Name: name, In: vals}
}

func (l *NamedLeaf) stats() *nodeStats { return &l.st }

// EvalSeg implements Node; NamedLeaf must be resolved before execution.
func (l *NamedLeaf) EvalSeg(*SegContext, []int32, []int32) []int32 {
	panic(fmt.Sprintf("exec: unresolved column reference %q (ResolveNames must run before execution)", l.Name))
}

// EvalRow implements Node; NamedLeaf must be resolved before execution.
func (l *NamedLeaf) EvalRow(types.Row) bool {
	panic(fmt.Sprintf("exec: unresolved column reference %q (ResolveNames must run before execution)", l.Name))
}

// UnknownColumnError reports a name that does not resolve against a schema,
// listing the columns that exist.
func UnknownColumnError(name string, schema *types.Schema) error {
	cols := make([]string, len(schema.Columns))
	for i, c := range schema.Columns {
		cols[i] = c.Name
	}
	return fmt.Errorf("exec: unknown column %q (columns: %s)", name, strings.Join(cols, ", "))
}

// ResolveNames rewrites every NamedLeaf in the filter tree to an ordinal
// Leaf using the schema, and validates the ordinals of plain leaves. The
// input tree is not mutated: subtrees containing named references are
// rebuilt, untouched subtrees are shared.
func ResolveNames(n Node, schema *types.Schema) (Node, error) {
	if n == nil {
		return nil, nil
	}
	switch f := n.(type) {
	case *NamedLeaf:
		col := schema.ColIndex(f.Name)
		if col < 0 {
			return nil, UnknownColumnError(f.Name, schema)
		}
		if len(f.In) > 0 {
			return NewIn(col, f.In), nil
		}
		return NewLeaf(col, f.Op, f.Val), nil
	case *Leaf:
		if f.Col < 0 || f.Col >= len(schema.Columns) {
			return nil, fmt.Errorf("exec: filter column ordinal %d out of range [0,%d)", f.Col, len(schema.Columns))
		}
		return f, nil
	case *And:
		children, changed, err := resolveChildren(f.Children, schema)
		if err != nil {
			return nil, err
		}
		if !changed {
			return f, nil
		}
		return &And{Children: children, DisableReorder: f.DisableReorder, DisableGroup: f.DisableGroup}, nil
	case *Or:
		children, changed, err := resolveChildren(f.Children, schema)
		if err != nil {
			return nil, err
		}
		if !changed {
			return f, nil
		}
		return &Or{Children: children}, nil
	case *Throttle:
		inner, err := ResolveNames(f.Inner, schema)
		if err != nil {
			return nil, err
		}
		if inner == f.Inner {
			return f, nil
		}
		return &Throttle{Inner: inner, PerSegment: f.PerSegment}, nil
	default:
		return n, nil
	}
}

func resolveChildren(children []Node, schema *types.Schema) ([]Node, bool, error) {
	out := make([]Node, len(children))
	changed := false
	for i, c := range children {
		r, err := ResolveNames(c, schema)
		if err != nil {
			return nil, false, err
		}
		if r != c {
			changed = true
		}
		out[i] = r
	}
	return out, changed, nil
}

// ResolveAggSpecs resolves name-based aggregate specs to ordinals and
// validates ordinal-based ones, returning a copy when anything changed.
func ResolveAggSpecs(aggs []AggSpec, schema *types.Schema) ([]AggSpec, error) {
	out := aggs
	copied := false
	for i, a := range aggs {
		if a.ColName != "" {
			col := schema.ColIndex(a.ColName)
			if col < 0 {
				return nil, UnknownColumnError(a.ColName, schema)
			}
			if !copied {
				out = append([]AggSpec(nil), aggs...)
				copied = true
			}
			out[i].Col = col
			out[i].ColName = ""
			continue
		}
		if a.Expr == nil && !(a.Func == Count && a.Col < 0) {
			if a.Col < 0 || a.Col >= len(schema.Columns) {
				return nil, fmt.Errorf("exec: aggregate column ordinal %d out of range [0,%d)", a.Col, len(schema.Columns))
			}
		}
	}
	return out, nil
}

// CloneNode deep-copies a filter tree with fresh adaptive statistics. The
// parallel scheduler hands each partition scan its own clone so concurrent
// EvalSeg calls never share mutable nodeStats.
func CloneNode(n Node) Node {
	if n == nil {
		return nil
	}
	switch f := n.(type) {
	case *Leaf:
		return &Leaf{Col: f.Col, Op: f.Op, Val: f.Val, In: f.In, forceStrategy: f.forceStrategy}
	case *NamedLeaf:
		return &NamedLeaf{Name: f.Name, Op: f.Op, Val: f.Val, In: f.In}
	case *And:
		children := make([]Node, len(f.Children))
		for i, c := range f.Children {
			children[i] = CloneNode(c)
		}
		return &And{Children: children, DisableReorder: f.DisableReorder, DisableGroup: f.DisableGroup}
	case *Or:
		children := make([]Node, len(f.Children))
		for i, c := range f.Children {
			children[i] = CloneNode(c)
		}
		return &Or{Children: children}
	case *Throttle:
		return &Throttle{Inner: CloneNode(f.Inner), PerSegment: f.PerSegment}
	default:
		return n
	}
}

// FormatNode renders a filter tree for plan output, using schema column
// names when available.
func FormatNode(n Node, schema *types.Schema) string {
	if n == nil {
		return ""
	}
	switch f := n.(type) {
	case *Leaf:
		return formatClause(colName(schema, f.Col), f.Op, f.Val, f.In)
	case *NamedLeaf:
		return formatClause(f.Name, f.Op, f.Val, f.In)
	case *And:
		return formatJunction(f.Children, " AND ", schema)
	case *Or:
		return formatJunction(f.Children, " OR ", schema)
	case *Throttle:
		if f.Inner == nil {
			return fmt.Sprintf("throttle(%s)", f.PerSegment)
		}
		return fmt.Sprintf("throttle(%s, %s)", f.PerSegment, FormatNode(f.Inner, schema))
	default:
		return fmt.Sprintf("%T", n)
	}
}

func formatJunction(children []Node, sep string, schema *types.Schema) string {
	parts := make([]string, len(children))
	for i, c := range children {
		parts[i] = FormatNode(c, schema)
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func formatClause(col string, op vector.CmpOp, val types.Value, in []types.Value) string {
	if len(in) > 0 {
		vs := make([]string, len(in))
		for i, v := range in {
			vs[i] = v.String()
		}
		return fmt.Sprintf("%s IN (%s)", col, strings.Join(vs, ", "))
	}
	return fmt.Sprintf("%s %s %s", col, op, val)
}

// FormatAgg renders one aggregate output for plan display.
func FormatAgg(a AggSpec, schema *types.Schema) string {
	switch {
	case a.Expr != nil:
		return fmt.Sprintf("%s(expr)", a.Func)
	case a.Func == Count && a.Col < 0 && a.ColName == "":
		return "count(*)"
	case a.ColName != "":
		return fmt.Sprintf("%s(%s)", a.Func, a.ColName)
	default:
		return fmt.Sprintf("%s(%s)", a.Func, colName(schema, a.Col))
	}
}

func colName(schema *types.Schema, col int) string {
	if schema != nil && col >= 0 && col < len(schema.Columns) {
		return schema.Columns[col].Name
	}
	return fmt.Sprintf("col%d", col)
}
