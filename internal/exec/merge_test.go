package exec

import (
	"testing"

	"s2db/internal/core"
	"s2db/internal/types"
)

func TestAggregateViewsMergesPartials(t *testing.T) {
	// Two single-partition tables stand in for two partitions of one table.
	tblA := newTable(t, 64)
	tblB := newTable(t, 64)
	for i := 0; i < 100; i++ {
		r := types.Row{
			types.NewInt(int64(i)),
			types.NewString("g" + string(rune('0'+i%3))),
			types.NewInt(int64(i % 10)),
			types.NewFloat(float64(i)),
		}
		target := tblA
		if i%2 == 1 {
			target = tblB
		}
		if err := target.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	out := AggregateViews(
		[]*core.View{tblA.Snapshot(), tblB.Snapshot()},
		nil,
		[]int{1},
		[]AggSpec{
			{Func: Count, Col: -1},
			{Func: Sum, Col: 2},
			{Func: Min, Col: 0},
			{Func: Max, Col: 0},
			{Func: Avg, Col: 3},
		}, nil)
	if len(out) != 3 {
		t.Fatalf("groups = %d", len(out))
	}
	for _, r := range out {
		g := int(r[0].S[1] - '0')
		var wantN, wantSum, wantMin, wantMax int64
		var wantAvg float64
		wantMin = 1 << 62
		cnt := 0
		for i := 0; i < 100; i++ {
			if i%3 != g {
				continue
			}
			wantN++
			wantSum += int64(i % 10)
			wantAvg += float64(i)
			cnt++
			if int64(i) < wantMin {
				wantMin = int64(i)
			}
			if int64(i) > wantMax {
				wantMax = int64(i)
			}
		}
		wantAvg /= float64(cnt)
		if r[1].I != wantN || r[2].I != wantSum || r[3].I != wantMin || r[4].I != wantMax {
			t.Fatalf("group %d: %v (want n=%d sum=%d min=%d max=%d)", g, r, wantN, wantSum, wantMin, wantMax)
		}
		if d := r[5].F - wantAvg; d < -1e-9 || d > 1e-9 {
			t.Fatalf("group %d avg = %v, want %v", g, r[5].F, wantAvg)
		}
	}
}

func TestMergeAggValueMinMaxNulls(t *testing.T) {
	n := types.Null(types.Int64)
	v := types.NewInt(5)
	if got := MergeAggValue(Min, n, v); got.I != 5 {
		t.Fatalf("Min(null, 5) = %v", got)
	}
	if got := MergeAggValue(Max, v, n); got.I != 5 {
		t.Fatalf("Max(5, null) = %v", got)
	}
	if got := MergeAggValue(Sum, types.NewFloat(1.5), types.NewFloat(2.5)); got.F != 4 {
		t.Fatalf("Sum = %v", got)
	}
	if got := MergeAggValue(Count, types.NewInt(2), types.NewInt(3)); got.I != 5 {
		t.Fatalf("Count = %v", got)
	}
}

func TestGroupFilterActivatesOnNonSelectiveClauses(t *testing.T) {
	tbl := newTable(t, 256)
	fill(t, tbl, 2048, true)
	// Two clauses that both pass ~everything: after warmup rounds the And
	// node should switch to the group filter.
	and := NewAnd(
		NewLeaf(2, 5 /*Ge*/, types.NewInt(0)),
		NewLeaf(2, 3 /*Le*/, types.NewInt(1000)),
	)
	var used int64
	for round := 0; round < 4; round++ {
		scan := NewScan(tbl.Snapshot(), and)
		scan.Count()
		used += scan.Stats.GroupFilters
	}
	if used == 0 {
		t.Fatal("group filter never activated on non-selective conjunction")
	}
	// Correctness under the group filter.
	if n := NewScan(tbl.Snapshot(), and).Count(); n != 2048 {
		t.Fatalf("count = %d", n)
	}
}

func TestOrReordersTowardAcceptingClauses(t *testing.T) {
	tbl := newTable(t, 256)
	fill(t, tbl, 2048, true)
	or := NewOr(
		NewLeaf(2, 0 /*Eq*/, types.NewInt(-1)), // never matches
		NewLeaf(2, 5 /*Ge*/, types.NewInt(0)),  // always matches
	)
	want := int64(2048)
	for round := 0; round < 3; round++ {
		if n := NewScan(tbl.Snapshot(), or).Count(); n != want {
			t.Fatalf("round %d: count = %d", round, n)
		}
	}
	// After warmup the accepting clause should be ranked first (higher
	// selectivity/cost), so evaluation order changed without affecting
	// results — verified implicitly by the stable counts above plus the
	// recorded stats.
	if or.Children[1].(*Leaf).st.rowsIn == 0 {
		t.Fatal("second clause never evaluated")
	}
}
