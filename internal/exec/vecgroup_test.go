package exec

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// budgetOf reads a partition's current hot-tier budget.
func budgetOf(c *VecCache) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxBytes
}

func TestValidateCacheShares(t *testing.T) {
	cases := []struct {
		name    string
		shares  map[string]float64
		wantErr string
	}{
		{"nil", nil, ""},
		{"valid", map[string]float64{"ws1": 0.3, "ws2": 0.2}, ""},
		{"with primary", map[string]float64{"primary": 0.5, "ws1": 0.5}, ""},
		{"empty name", map[string]float64{"": 0.5}, "nonexistent workspace"},
		{"zero share", map[string]float64{"ws1": 0}, "must be > 0"},
		{"negative share", map[string]float64{"ws1": -0.25}, "must be > 0"},
		{"single share over one", map[string]float64{"ws1": 1.5}, "exceeds the whole budget"},
		{"sum over one", map[string]float64{"ws1": 0.6, "ws2": 0.6}, "over the whole budget"},
		{"primary starved", map[string]float64{"ws1": 1.0}, "leaving the primary no budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateCacheShares(tc.shares)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}

	// Invalid shares fail group construction even when the cache is disabled.
	if _, err := NewVecCacheGroup(-1, map[string]float64{"": 0.5}, false); err == nil {
		t.Fatal("disabled group accepted invalid shares")
	}
	if g, err := NewVecCacheGroup(-1, nil, false); g != nil || err != nil {
		t.Fatalf("disabled group = (%v, %v), want (nil, nil)", g, err)
	}
}

func TestVecCacheGroupBudgetSplit(t *testing.T) {
	const total = 1 << 20
	g, err := NewVecCacheGroup(total, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	hotPool := int64(total - total/4)

	// No workspaces: the primary owns the whole hot pool.
	if b := budgetOf(g.Primary()); b != hotPool {
		t.Fatalf("primary budget = %d, want %d", b, hotPool)
	}

	// One workspace: even split.
	ws1, err := g.AttachPartition("ws1")
	if err != nil {
		t.Fatal(err)
	}
	if b := budgetOf(g.Primary()); b != hotPool/2 {
		t.Fatalf("primary budget with 1 ws = %d, want %d", b, hotPool/2)
	}
	if b := budgetOf(ws1); b != hotPool/2 {
		t.Fatalf("ws1 budget = %d, want %d", b, hotPool/2)
	}

	// Two workspaces: the primary floor holds it at half the pool, the
	// workspaces split the rest.
	ws2, err := g.AttachPartition("ws2")
	if err != nil {
		t.Fatal(err)
	}
	if b := budgetOf(g.Primary()); b != hotPool/2 {
		t.Fatalf("primary budget with 2 ws = %d, want floor %d", b, hotPool/2)
	}
	if b := budgetOf(ws1); b != hotPool/4 {
		t.Fatalf("ws1 budget = %d, want %d", b, hotPool/4)
	}
	if b := budgetOf(ws2); b != hotPool/4 {
		t.Fatalf("ws2 budget = %d, want %d", b, hotPool/4)
	}

	// Detach rebalances back to the even split.
	g.DetachPartition("ws2")
	if b := budgetOf(ws1); b != hotPool/2 {
		t.Fatalf("ws1 budget after detach = %d, want %d", b, hotPool/2)
	}

	// Duplicate attach is rejected; empty names are rejected.
	if _, err := g.AttachPartition("ws1"); err == nil {
		t.Fatal("duplicate attach succeeded")
	}
	if _, err := g.AttachPartition(""); err == nil {
		t.Fatal("empty workspace name accepted")
	}
}

func TestVecCacheGroupExplicitShares(t *testing.T) {
	const total = 1 << 20
	g, err := NewVecCacheGroup(total, map[string]float64{"ws1": 0.25}, false)
	if err != nil {
		t.Fatal(err)
	}
	hotPool := float64(total - total/4)
	ws1, err := g.AttachPartition("ws1")
	if err != nil {
		t.Fatal(err)
	}
	if b := budgetOf(ws1); b != int64(0.25*hotPool) {
		t.Fatalf("explicit ws1 share = %d, want %d", b, int64(0.25*hotPool))
	}
	// The primary keeps the unreserved remainder.
	if b := budgetOf(g.Primary()); b != int64(0.75*hotPool) {
		t.Fatalf("primary budget = %d, want %d", b, int64(0.75*hotPool))
	}
}

func TestVecCacheGroupUnifiedMode(t *testing.T) {
	g, err := NewVecCacheGroup(1<<20, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := g.AttachPartition("ws1")
	if err != nil {
		t.Fatal(err)
	}
	if ws != g.Primary() {
		t.Fatal("unified mode must alias every workspace onto the primary tier")
	}
	if b := budgetOf(g.Primary()); b != 1<<20 {
		t.Fatalf("unified budget = %d, want the whole pool", b)
	}
}

func TestVecCacheGroupDemoteThenPromote(t *testing.T) {
	// 16KB total: 4KB shared tier, 12KB hot pool -> 6KB per partition once a
	// workspace attaches. 64-row segments decode to 512-byte int vectors.
	g, err := NewVecCacheGroup(16<<10, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := g.AttachPartition("ws")
	if err != nil {
		t.Fatal(err)
	}
	tbl := newCachedTable(t, 64, 64*20, g.Primary())
	view := tbl.Snapshot()
	if len(view.Segs) < 14 {
		t.Fatalf("need enough segments to overflow a 6KB tier, got %d", len(view.Segs))
	}

	// A cold sweep on the workspace overflows its hot tier: the overflow
	// demotes into the shared tier instead of being dropped.
	var wsStats ScanStats
	for _, m := range view.Segs {
		ws.Ints(m, 2, &wsStats)
	}
	wss := ws.Stats()
	if wss.Demotions == 0 {
		t.Fatalf("workspace sweep demoted nothing: %+v", wss)
	}
	shared := g.Stats().Shared
	if shared.Entries == 0 || shared.Bytes == 0 {
		t.Fatalf("shared tier empty after demotions: %+v", shared)
	}

	// The primary touching the demoted vectors promotes them without a
	// decode: shared hits appear, and total decodes stay below a full
	// re-decode of the table.
	var pStats ScanStats
	for _, m := range view.Segs {
		g.Primary().Ints(m, 2, &pStats)
	}
	if pStats.VecCacheSharedHits == 0 {
		t.Fatalf("no promotions from the shared tier: %+v", pStats)
	}
	if pStats.VecDecodes >= int64(len(view.Segs)) {
		t.Fatalf("primary re-decoded everything (%d/%d) despite the shared tier",
			pStats.VecDecodes, len(view.Segs))
	}
	ps := g.Primary().Stats()
	if ps.SharedHits != pStats.VecCacheSharedHits {
		t.Fatalf("partition SharedHits %d != scan counter %d", ps.SharedHits, pStats.VecCacheSharedHits)
	}
}

func TestVecCacheGroupInvalidateAllTiers(t *testing.T) {
	g, err := NewVecCacheGroup(16<<10, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := g.AttachPartition("ws")
	if err != nil {
		t.Fatal(err)
	}
	tbl := newCachedTable(t, 64, 64*20, g.Primary())
	view := tbl.Snapshot()

	// Populate the workspace tier (overflow fills the shared tier) and the
	// primary tier.
	for _, m := range view.Segs {
		ws.Ints(m, 2, nil)
	}
	for _, m := range view.Segs {
		g.Primary().Ints(m, 2, nil)
	}

	// Invalidating through a partition handle (what core's dropSegment
	// holds) must purge the segment from every tier.
	seg := view.Segs[0].Seg
	ws.InvalidateSegment(seg)
	if b, h := g.Primary().SegmentHeat(seg); b != 0 || h != 0 {
		t.Fatalf("heat after invalidation = (%d, %d), want (0, 0)", b, h)
	}
	if _, ok := g.PeekInts(seg, 2); ok {
		t.Fatal("vector survived invalidation in some tier")
	}
	if !seg.Retired() {
		t.Fatal("invalidation did not set the retirement flag")
	}

	// A retired segment can never re-enter any tier: a fresh decode serves
	// the caller but installs nothing.
	var st ScanStats
	g.Primary().Ints(view.Segs[0], 2, &st)
	if st.VecDecodes != 1 {
		t.Fatalf("post-retirement read should decode fresh: %+v", st)
	}
	if _, ok := g.PeekInts(seg, 2); ok {
		t.Fatal("retired segment was re-installed")
	}
}

// TestVecCacheGroupEvictionRacesInvalidation hammers the promote/demote
// paths of two partitions with tiny budgets while segments are concurrently
// retired, asserting the two safety invariants: tier byte accounting never
// goes negative, and a retired segment's vectors are never served from (or
// re-installed into) any tier.
func TestVecCacheGroupEvictionRacesInvalidation(t *testing.T) {
	g, err := NewVecCacheGroup(12<<10, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := g.AttachPartition("ws")
	if err != nil {
		t.Fatal(err)
	}
	tbl := newCachedTable(t, 64, 64*24, g.Primary())
	view := tbl.Snapshot()
	segs := view.Segs

	checkBytes := func() {
		gs := g.Stats()
		for name, s := range map[string]VecCacheStats{
			"primary": gs.Primary, "shared": gs.Shared, "ws": gs.Workspaces["ws"],
		} {
			if s.Bytes < 0 {
				t.Errorf("%s tier bytes went negative: %d", name, s.Bytes)
			}
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		part := g.Primary()
		if i%2 == 1 {
			part = ws
		}
		wg.Add(1)
		go func(part *VecCache) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, m := range segs {
					if v := part.Ints(m, 2, nil); len(v) != m.Seg.NumRows {
						t.Errorf("short vector: %d != %d", len(v), m.Seg.NumRows)
						return
					}
				}
			}
		}(part)
	}

	// Retire the first half of the segments while the readers hammer all of
	// them; after each invalidation the segment must be gone from every tier
	// and stay gone (promotion/demotion cannot resurrect it).
	for i := 0; i < len(segs)/2; i++ {
		seg := segs[i].Seg
		g.InvalidateSegment(seg)
		if _, ok := g.PeekInts(seg, 2); ok {
			t.Errorf("segment %d resident right after invalidation", i)
		}
		checkBytes()
	}
	close(stop)
	wg.Wait()

	// With all readers quiesced, retired segments must be absent from every
	// tier even after the post-invalidation reader traffic.
	for i := 0; i < len(segs)/2; i++ {
		if _, ok := g.PeekInts(segs[i].Seg, 2); ok {
			t.Errorf("retired segment %d resurrected by racing promote/demote", i)
		}
		if b, _ := g.SegmentHeat(segs[i].Seg); b != 0 {
			t.Errorf("retired segment %d still has %d resident bytes", i, b)
		}
	}
	checkBytes()

	// Live segments keep working and the tiers stay within budget.
	var st ScanStats
	for i := len(segs) / 2; i < len(segs); i++ {
		g.Primary().Ints(segs[i], 2, &st)
	}
	gs := g.Stats()
	if total := gs.Primary.Bytes + gs.Shared.Bytes + gs.Workspaces["ws"].Bytes; total > 12<<10 {
		t.Fatalf("tiers exceed the group budget: %d > %d", total, 12<<10)
	}
}

func TestVecCacheGroupDetachDiscardsWithoutDemoting(t *testing.T) {
	g, err := NewVecCacheGroup(16<<10, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := g.AttachPartition("ws")
	if err != nil {
		t.Fatal(err)
	}
	tbl := newCachedTable(t, 64, 64*4, g.Primary())
	view := tbl.Snapshot()
	for _, m := range view.Segs {
		ws.Ints(m, 2, nil)
	}
	before := g.Stats().Shared.Entries
	g.DetachPartition("ws")
	if got := ws.Stats().Entries; got != 0 {
		t.Fatalf("detached partition still holds %d entries", got)
	}
	if after := g.Stats().Shared.Entries; after != before {
		t.Fatalf("detach demoted into the shared tier: %d -> %d entries", before, after)
	}
	if _, ok := g.Stats().Workspaces["ws"]; ok {
		t.Fatal("detached workspace still reported in group stats")
	}
}

func TestVecCacheGroupStatsTotalFoldsTiers(t *testing.T) {
	g, err := NewVecCacheGroup(16<<10, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := g.AttachPartition("ws")
	if err != nil {
		t.Fatal(err)
	}
	tbl := newCachedTable(t, 64, 64*8, g.Primary())
	view := tbl.Snapshot()
	for _, m := range view.Segs {
		ws.Ints(m, 2, nil)
		g.Primary().Ints(m, 2, nil)
	}
	gs := g.Stats()
	total := gs.Total()
	wantHits := gs.Primary.Hits + gs.Shared.Hits + gs.Workspaces["ws"].Hits
	if total.Hits != wantHits {
		t.Fatalf("Total().Hits = %d, want %d", total.Hits, wantHits)
	}
	wantBytes := gs.Primary.Bytes + gs.Shared.Bytes + gs.Workspaces["ws"].Bytes
	if total.Bytes != wantBytes {
		t.Fatalf("Total().Bytes = %d, want %d", total.Bytes, wantBytes)
	}
	if s := fmt.Sprint(total.Misses); s == "0" {
		t.Fatalf("fold lost the miss counters: %+v", total)
	}
}
