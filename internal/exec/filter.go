// Package exec implements adaptive query execution over unified table
// storage (§5): segment skipping through the global secondary indexes and
// zone maps (§5.1), four filter-evaluation strategies chosen by per-segment
// micro-costing (§5.2), dynamic clause reordering by (1-P)/cost, and the
// join index filter with hash-join fallback (§5.1).
package exec

import (
	"math"
	"sort"
	"time"

	"s2db/internal/bitmap"
	"s2db/internal/codec"
	"s2db/internal/colstore"
	"s2db/internal/index"
	"s2db/internal/types"
	"s2db/internal/vector"
)

// Node is a filter-condition tree node (§5.2: "S2DB represents the filter
// condition as a tree and reorders each intermediate AND/OR node ...
// separately").
type Node interface {
	// EvalSeg filters candidate row offsets of a segment, appending
	// survivors to out.
	EvalSeg(ctx *SegContext, sel []int32, out []int32) []int32
	// EvalRow evaluates the condition on a materialized row (buffer rows).
	EvalRow(r types.Row) bool
	// stats returns the node's adaptive statistics record.
	stats() *nodeStats
}

// nodeStats accumulates observed selectivity and per-row cost across blocks
// ("the ordering decision is made per-block using the selectivities from
// previous blocks", §5.2).
type nodeStats struct {
	rowsIn, rowsOut int64
	nanos           int64
}

func (s *nodeStats) record(in, out int, d time.Duration) {
	s.rowsIn += int64(in)
	s.rowsOut += int64(out)
	s.nanos += d.Nanoseconds()
}

// selectivity returns the observed pass rate P(X), defaulting to 0.5.
func (s *nodeStats) selectivity() float64 {
	if s.rowsIn == 0 {
		return 0.5
	}
	return float64(s.rowsOut) / float64(s.rowsIn)
}

// costPerRow returns observed nanoseconds per input row, defaulting to 1.
func (s *nodeStats) costPerRow() float64 {
	if s.rowsIn == 0 {
		return 1
	}
	c := float64(s.nanos) / float64(s.rowsIn)
	if c <= 0 {
		return 0.01
	}
	return c
}

// rank is the §5.2 ordering key (1 - P(X)) / cost(X); higher runs first.
func (s *nodeStats) rank() float64 { return (1 - s.selectivity()) / s.costPerRow() }

// SegContext carries per-segment execution state: the segment, its deleted
// bits, the table's index set, decode scratch caches and strategy counters.
type SegContext struct {
	Meta *colstore.Meta
	Idx  *index.Set
	// Stats is optional; when set, strategy decisions are counted.
	Stats *ScanStats
	// Cache, when non-nil, is the process-wide decoded-vector cache shared
	// across queries and fan-out workers; nil falls back to private
	// per-segment decodes (the pre-cache behaviour).
	Cache *VecCache

	intCache [][]int64
	strCache [][]string
	// rowBufs tracks pooled row buffers handed out by Materializer so the
	// scan can recycle them once the segment's callback returns.
	rowBufs []*types.Row
}

// NewSegContext prepares execution state for one segment.
func NewSegContext(meta *colstore.Meta, idx *index.Set, stats *ScanStats) *SegContext {
	n := len(meta.Seg.Schema().Columns)
	return &SegContext{Meta: meta, Idx: idx, Stats: stats,
		intCache: make([][]int64, n), strCache: make([][]string, n)}
}

// ints returns the fully decoded int64 (or float bits) column. The slice is
// memoized per segment-context and, when a shared cache is wired in, served
// from (and published to) the cross-query decoded-vector cache.
func (c *SegContext) ints(col int) []int64 {
	if v := c.intCache[col]; v != nil {
		return v
	}
	var v []int64
	if c.Cache != nil {
		v = c.Cache.Ints(c.Meta, col, c.Stats)
	} else {
		v = decodeInts(c.Meta, col, c.Stats)
	}
	c.intCache[col] = v
	return v
}

// strs returns the fully decoded string column; see ints for caching.
func (c *SegContext) strs(col int) []string {
	if v := c.strCache[col]; v != nil {
		return v
	}
	var v []string
	if c.Cache != nil {
		v = c.Cache.Strs(c.Meta, col, c.Stats)
	} else {
		v = decodeStrs(c.Meta, col, c.Stats)
	}
	c.strCache[col] = v
	return v
}

// releaseBuffers recycles the pooled row buffers handed out by
// Materializer. Callers must not touch previously emitted rows afterwards
// (the standard iterator contract already requires cloning retained rows).
func (c *SegContext) releaseBuffers() {
	for _, p := range c.rowBufs {
		putRow(p)
	}
	c.rowBufs = nil
}

// Materializer returns a row builder for this segment. When cols is
// non-nil only those ordinals are populated (projection pushdown); dense
// selections decode each needed column once and read from the decoded
// slices (vectorized late materialization, §2.1.2), sparse ones seek.
// The returned row is REUSED across calls: callers that retain it must
// Clone it first (the standard iterator contract; Scan.Run documents it).
func (c *SegContext) Materializer(cols []int, dense bool) func(i int) types.Row {
	seg := c.Meta.Seg
	ncols := len(seg.Schema().Columns)
	if cols == nil {
		cols = make([]int, ncols)
		for i := range cols {
			cols[i] = i
		}
	}
	bufp := getRow(ncols)
	c.rowBufs = append(c.rowBufs, bufp)
	buf := *bufp
	stats := c.Stats
	if !dense {
		return func(i int) types.Row {
			if stats != nil {
				stats.RowsMaterialized++
			}
			for _, col := range cols {
				buf[col] = seg.ValueAt(i, col)
			}
			return buf
		}
	}
	// Resolve decoded slices and null bitmaps once per segment.
	type acc struct {
		col   int
		t     types.ColType
		ints  []int64
		strs  []string
		nulls *bitmap.Bitmap
	}
	accs := make([]acc, len(cols))
	for j, col := range cols {
		a := acc{col: col, t: seg.Schema().Columns[col].Type, nulls: seg.Cols[col].Nulls}
		switch a.t {
		case types.Int64, types.Float64:
			a.ints = c.ints(col)
		default:
			a.strs = c.strs(col)
		}
		accs[j] = a
	}
	return func(i int) types.Row {
		if stats != nil {
			stats.RowsMaterialized++
		}
		for _, a := range accs {
			if a.nulls != nil && a.nulls.Get(i) {
				buf[a.col] = types.Null(a.t)
				continue
			}
			switch a.t {
			case types.Int64:
				buf[a.col] = types.Value{Type: types.Int64, I: a.ints[i]}
			case types.Float64:
				buf[a.col] = types.Value{Type: types.Float64, F: math.Float64frombits(uint64(a.ints[i]))}
			default:
				buf[a.col] = types.Value{Type: types.String, S: a.strs[i]}
			}
		}
		return buf
	}
}

// ScanStats counts adaptive-execution decisions for the experiments.
type ScanStats struct {
	SegmentsScanned    int64
	SegmentsSkipped    int64
	IndexFilters       int64
	EncodedFilters     int64
	RegularFilters     int64
	GroupFilters       int64
	RowsScanned        int64
	RowsOutput         int64
	GlobalIndexProbes  int64
	JoinIndexFilters   int64
	JoinIndexFallbacks int64

	// Decoded-vector cache counters for this scan: hits served without
	// decode work, misses this scan decoded itself, waits that joined
	// another worker's in-flight decode (single-flight), and evictions this
	// scan's inserts triggered. VecDecodes counts the DecodeAll calls the
	// scan actually performed — zero on a fully warm cache.
	VecCacheHits      int64
	VecCacheMisses    int64
	VecCacheWaits     int64
	VecCacheEvictions int64
	VecDecodes        int64
	// VecCacheSharedHits counts hits served by promoting a vector out of
	// the cache group's shared backing tier (a subset of VecCacheHits);
	// zero on a standalone (non-partitioned) cache.
	VecCacheSharedHits int64
	// PlanCacheHits/PlanCacheMisses record the SQL plan-cache outcome of
	// the run (set only when the query arrived as SQL text): a hit reused
	// a cached lowered plan and skipped lex/parse/lower, a miss compiled
	// the statement from scratch. Zero for builder-API queries.
	PlanCacheHits   int64
	PlanCacheMisses int64

	// Fused-kernel counters. EncodedFilterSegs counts segments whose whole
	// filter tree evaluated in span space (selections carried as coalesced
	// runs, never flattened to per-row vectors); FusedAggSegs counts
	// segments folded by a single-pass fused aggregation kernel instead of
	// the materialize-then-add path; RowsMaterialized counts rows actually
	// built into types.Row — the late-materialization budget a fused query
	// avoids spending.
	EncodedFilterSegs int64
	FusedAggSegs      int64
	RowsMaterialized  int64

	// Lazy-hydration counters. HydrationWaits counts demand waits this
	// scan issued on cold (not-yet-hydrated) segments; HydratedSegs counts
	// the segments those waits brought in. Both zero on warm tables and
	// under the EagerHydration ablation.
	HydrationWaits int64
	HydratedSegs   int64

	// QoS admission counters. QoSWaits counts admission acquires (worker
	// slots, scan memory) this run that had to queue on the tenant's
	// token buckets; QoSWaitNanos is their cumulative queue time. Both
	// zero when the run was never throttled or QoS is disabled.
	QoSWaits     int64
	QoSWaitNanos int64
}

// Leaf is a comparison clause: col op val (with optional IN-list).
type Leaf struct {
	Col int
	Op  vector.CmpOp
	Val types.Value
	// In, when non-empty, makes the clause an IN-list (Op ignored).
	In []types.Value

	st nodeStats
	// forceStrategy pins a strategy for the ablation benchmarks: 0 = auto.
	forceStrategy leafStrategy
}

type leafStrategy uint8

const (
	autoStrategy leafStrategy = iota
	regularStrategy
	encodedStrategy
	indexStrategy
)

// NewLeaf returns a comparison clause.
func NewLeaf(col int, op vector.CmpOp, val types.Value) *Leaf {
	return &Leaf{Col: col, Op: op, Val: val}
}

// NewIn returns an IN-list clause.
func NewIn(col int, vals []types.Value) *Leaf { return &Leaf{Col: col, In: vals} }

// ForceRegular pins the clause to the regular (decode-then-filter)
// strategy; used by the ablation benchmarks.
func (l *Leaf) ForceRegular() *Leaf { l.forceStrategy = regularStrategy; return l }

// ForceEncoded pins the clause to encoded execution when possible.
func (l *Leaf) ForceEncoded() *Leaf { l.forceStrategy = encodedStrategy; return l }

func (l *Leaf) stats() *nodeStats { return &l.st }

// EvalRow implements Node.
func (l *Leaf) EvalRow(r types.Row) bool {
	if len(l.In) > 0 {
		for _, v := range l.In {
			if types.Equal(r[l.Col], v) {
				return true
			}
		}
		return false
	}
	return vector.CmpValue(r[l.Col], l.Op, l.Val)
}

// EvalSeg implements Node: it picks among the §5.2 strategies — secondary
// index filter, encoded filter, regular filter — using postings sizes and
// observed costs.
func (l *Leaf) EvalSeg(ctx *SegContext, sel []int32, out []int32) []int32 {
	start := time.Now()
	in := len(sel)
	out = l.evalStrategies(ctx, sel, out)
	l.st.record(in, len(out), time.Since(start))
	return out
}

func (l *Leaf) evalStrategies(ctx *SegContext, sel []int32, out []int32) []int32 {
	seg := ctx.Meta.Seg
	// Secondary index filter: only for equality with an index, and only
	// when the postings list is smaller than the candidate set ("it can
	// still be worse if the other clauses already filtered the result down
	// to a few rows", §5.2). Costing uses the postings size directly.
	if l.forceStrategy != regularStrategy && len(l.In) == 0 && l.Op == vector.Eq && ctx.Idx != nil && ctx.Idx.HasColumn(l.Col) {
		if postings, ok := ctx.Idx.SegmentPostings(seg.ID, l.Col, l.Val); ok {
			if l.forceStrategy == indexStrategy || len(postings)*4 < len(sel) {
				if ctx.Stats != nil {
					ctx.Stats.IndexFilters++
				}
				return appendIntersect(out, sel, postings)
			}
		}
	}
	// Encoded filter on dictionary or RLE columns.
	if l.forceStrategy != regularStrategy {
		if res, ok := l.tryEncoded(ctx, sel, out); ok {
			return res
		}
	}
	if ctx.Stats != nil {
		ctx.Stats.RegularFilters++
	}
	return l.evalRegular(ctx, sel, out)
}

// tryEncoded evaluates directly on compressed data when profitable: once
// per dictionary entry or RLE run instead of once per row (§5.2 "encoded
// filter").
func (l *Leaf) tryEncoded(ctx *SegContext, sel []int32, out []int32) ([]int32, bool) {
	seg := ctx.Meta.Seg
	col := seg.Cols[l.Col]
	if col.Strs != nil {
		dict, ok := col.Strs.(*codec.Dict)
		if !ok {
			return nil, false
		}
		// "it can be worse if the dictionary size is greater than the
		// number of rows that passed the previous filters" — cost check.
		if l.forceStrategy != encodedStrategy && dict.DictSize() > len(sel) {
			return nil, false
		}
		if ctx.Stats != nil {
			ctx.Stats.EncodedFilters++
		}
		pass := make([]bool, dict.DictSize())
		for c := range pass {
			pass[c] = l.matchString(dict.DictValue(c))
		}
		nulls := col.Nulls
		for _, i := range sel {
			if nulls != nil && nulls.Get(int(i)) {
				continue
			}
			if pass[dict.Code(int(i))] {
				out = append(out, i)
			}
		}
		return out, true
	}
	if rle, ok := col.Ints.(*codec.RLE); ok {
		if l.forceStrategy != encodedStrategy && rle.Runs() > len(sel) {
			return nil, false
		}
		if ctx.Stats != nil {
			ctx.Stats.EncodedFilters++
		}
		t := seg.Schema().Columns[l.Col].Type
		// Evaluate once per run, then emit selected offsets inside
		// qualifying runs via a merge over runs and sel.
		nulls := col.Nulls
		si := 0
		for run := 0; run < rle.Runs() && si < len(sel); run++ {
			v, start, end := rle.Run(run)
			if !l.matchIntBits(v, t) {
				for si < len(sel) && int(sel[si]) < end {
					si++
				}
				continue
			}
			for si < len(sel) && int(sel[si]) < end {
				if int(sel[si]) >= start {
					if nulls == nil || !nulls.Get(int(sel[si])) {
						out = append(out, sel[si])
					}
				}
				si++
			}
		}
		return out, true
	}
	return nil, false
}

func (l *Leaf) matchString(s string) bool {
	if len(l.In) > 0 {
		for _, v := range l.In {
			if v.S == s {
				return true
			}
		}
		return false
	}
	return vector.CmpString(s, l.Op, l.Val.S)
}

// matchIntBits evaluates the clause on a raw int64 column value (which is
// IEEE bits for float columns).
func (l *Leaf) matchIntBits(v int64, t types.ColType) bool {
	if t == types.Float64 {
		f := math.Float64frombits(uint64(v))
		if len(l.In) > 0 {
			for _, iv := range l.In {
				if iv.F == f {
					return true
				}
			}
			return false
		}
		return vector.CmpFloat(f, l.Op, l.Val.F)
	}
	if len(l.In) > 0 {
		for _, iv := range l.In {
			if iv.I == v {
				return true
			}
		}
		return false
	}
	return vector.CmpInt(v, l.Op, l.Val.I)
}

// evalRegular selectively decodes the column for surviving rows and filters
// on the decoded values ("regular filter", §5.2, with late
// materialization).
func (l *Leaf) evalRegular(ctx *SegContext, sel []int32, out []int32) []int32 {
	seg := ctx.Meta.Seg
	col := seg.Cols[l.Col]
	t := seg.Schema().Columns[l.Col].Type
	nulls := col.Nulls
	dense := len(sel)*2 >= seg.NumRows
	switch t {
	case types.Int64:
		if dense && len(l.In) == 0 {
			vals := ctx.ints(l.Col)
			if nulls == nil {
				return vector.FilterIntConst(vals, l.Op, l.Val.I, sel, out)
			}
			for _, i := range sel {
				if !nulls.Get(int(i)) && vector.CmpInt(vals[i], l.Op, l.Val.I) {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range sel {
			if nulls != nil && nulls.Get(int(i)) {
				continue
			}
			if l.matchIntBits(col.Ints.At(int(i)), t) {
				out = append(out, i)
			}
		}
		return out
	case types.Float64:
		if dense && len(l.In) == 0 {
			raw := ctx.ints(l.Col)
			for _, i := range sel {
				if nulls != nil && nulls.Get(int(i)) {
					continue
				}
				if vector.CmpFloat(math.Float64frombits(uint64(raw[i])), l.Op, l.Val.F) {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range sel {
			if nulls != nil && nulls.Get(int(i)) {
				continue
			}
			if l.matchIntBits(col.Ints.At(int(i)), t) {
				out = append(out, i)
			}
		}
		return out
	default:
		if dense {
			vals := ctx.strs(l.Col)
			for _, i := range sel {
				if nulls != nil && nulls.Get(int(i)) {
					continue
				}
				if l.matchString(vals[i]) {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range sel {
			if nulls != nil && nulls.Get(int(i)) {
				continue
			}
			if l.matchString(col.Strs.At(int(i))) {
				out = append(out, i)
			}
		}
		return out
	}
}

// appendIntersect appends the intersection of sorted sel and postings to
// out.
func appendIntersect(out []int32, sel []int32, postings index.Postings) []int32 {
	i, j := 0, 0
	for i < len(sel) && j < len(postings) {
		switch {
		case sel[i] < postings[j]:
			i++
		case sel[i] > postings[j]:
			j++
		default:
			out = append(out, sel[i])
			i++
			j++
		}
	}
	return out
}

// And is a conjunction node. It adaptively orders its children by
// (1-P)/cost and may switch to a group filter (decode all filtered columns,
// evaluate the whole conjunction row-wise) when clauses are non-selective
// (§5.2).
type And struct {
	Children []Node
	st       nodeStats
	// DisableReorder pins left-to-right evaluation for the ablation bench.
	DisableReorder bool
	// DisableGroup disables the group-filter strategy.
	DisableGroup bool
}

// NewAnd builds a conjunction.
func NewAnd(children ...Node) *And { return &And{Children: children} }

func (a *And) stats() *nodeStats { return &a.st }

// EvalRow implements Node.
func (a *And) EvalRow(r types.Row) bool {
	for _, c := range a.Children {
		if !c.EvalRow(r) {
			return false
		}
	}
	return true
}

// EvalSeg implements Node.
func (a *And) EvalSeg(ctx *SegContext, sel []int32, out []int32) []int32 {
	start := time.Now()
	in := len(sel)

	order := make([]Node, len(a.Children))
	copy(order, a.Children)
	if !a.DisableReorder {
		// Sort descending by (1 - P) / cost: cheap, selective clauses run
		// first (§5.2).
		sort.SliceStable(order, func(i, j int) bool {
			return order[i].stats().rank() > order[j].stats().rank()
		})
	}

	// Group-filter check: when most rows pass each clause, evaluating the
	// whole conjunction per row beats producing intermediate selections.
	if !a.DisableGroup && a.groupProfitable() {
		if ctx.Stats != nil {
			ctx.Stats.GroupFilters++
		}
		res := a.evalGroup(ctx, sel, out)
		a.st.record(in, len(res), time.Since(start))
		return res
	}

	cur := sel
	var scratch []int32
	for _, c := range order {
		if len(cur) == 0 {
			break
		}
		scratch = c.EvalSeg(ctx, cur, scratch[:0])
		cur, scratch = scratch, cur
	}
	out = append(out, cur...)
	a.st.record(in, len(out), time.Since(start))
	return out
}

// groupProfitable estimates whether a group filter beats clause-at-a-time:
// profitable when every clause passes most rows (selection vectors barely
// shrink, so their maintenance is overhead).
func (a *And) groupProfitable() bool {
	if len(a.Children) < 2 {
		return false
	}
	for _, c := range a.Children {
		st := c.stats()
		if st.rowsIn == 0 || st.selectivity() < 0.75 {
			return false
		}
		if _, isLeaf := c.(*Leaf); !isLeaf {
			return false
		}
	}
	return true
}

func (a *And) evalGroup(ctx *SegContext, sel []int32, out []int32) []int32 {
	seg := ctx.Meta.Seg
	for _, i := range sel {
		pass := true
		for _, c := range a.Children {
			l := c.(*Leaf)
			v := seg.ValueAt(int(i), l.Col)
			if !l.EvalRow(rowWithValue(seg, int(i), l.Col, v)) {
				pass = false
				break
			}
		}
		if pass {
			out = append(out, i)
		}
	}
	return out
}

// rowWithValue builds a sparse row holding just the clause's column; leaves
// only inspect their own ordinal.
func rowWithValue(seg *colstore.Segment, _ int, col int, v types.Value) types.Row {
	r := make(types.Row, len(seg.Schema().Columns))
	r[col] = v
	return r
}

// Or is a disjunction node, reordered by the ratio of rows *not* selected
// per cost (§5.2).
type Or struct {
	Children []Node
	st       nodeStats
}

// NewOr builds a disjunction.
func NewOr(children ...Node) *Or { return &Or{Children: children} }

func (o *Or) stats() *nodeStats { return &o.st }

// EvalRow implements Node.
func (o *Or) EvalRow(r types.Row) bool {
	for _, c := range o.Children {
		if c.EvalRow(r) {
			return true
		}
	}
	return false
}

// EvalSeg implements Node.
func (o *Or) EvalSeg(ctx *SegContext, sel []int32, out []int32) []int32 {
	start := time.Now()
	in := len(sel)
	order := make([]Node, len(o.Children))
	copy(order, o.Children)
	// For OR, a child that *accepts* many rows cheaply should run first:
	// rank by P/cost (tracking "the ratio of rows not selected ... instead
	// of the selected rows", §5.2).
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := order[i].stats(), order[j].stats()
		return si.selectivity()/si.costPerRow() > sj.selectivity()/sj.costPerRow()
	})
	remaining := sel
	var matchedAll []int32
	var scratch []int32
	for _, c := range order {
		if len(remaining) == 0 {
			break
		}
		scratch = c.EvalSeg(ctx, remaining, scratch[:0])
		matchedAll = append(matchedAll, scratch...)
		// remaining = remaining \ scratch
		remaining = subtractSorted(remaining, scratch)
	}
	sort.Slice(matchedAll, func(i, j int) bool { return matchedAll[i] < matchedAll[j] })
	out = append(out, matchedAll...)
	o.st.record(in, len(out), time.Since(start))
	return out
}

// subtractSorted returns a \ b for sorted slices.
func subtractSorted(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)-len(b))
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}
