package exec

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"s2db/internal/core"
	"s2db/internal/txn"
	"s2db/internal/types"
	"s2db/internal/vector"
	"s2db/internal/wal"
)

// newKernelTable builds a table exercising every encoding the fused kernels
// dispatch on: id (unique int), cat (indexed dict string), status (dict
// string), val (sort key → RLE runs in bulk-loaded segments), score
// (float), hi (high-cardinality bit-packed int, nulls every 7th row), note
// (high-distinct string, nulls every 11th row).
func newKernelTable(t testing.TB, maxSegRows int) *core.Table {
	t.Helper()
	s := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "cat", Type: types.String},
		types.Column{Name: "status", Type: types.String},
		types.Column{Name: "val", Type: types.Int64},
		types.Column{Name: "score", Type: types.Float64},
		types.Column{Name: "hi", Type: types.Int64},
		types.Column{Name: "note", Type: types.String},
	)
	s.UniqueKey = []int{0}
	s.SecondaryKeys = [][]int{{1}}
	s.SortKey = 3
	tbl, err := core.NewTable("k", s, core.Config{MaxSegmentRows: maxSegRows},
		core.NewCommitter(&txn.Oracle{}), wal.NewLog(), core.NewMemFiles())
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func kernelRow(i int) types.Row {
	hi := types.NewInt(int64(i * 7919 % 100003))
	if i%7 == 0 {
		hi = types.Null(types.Int64)
	}
	note := types.NewString(fmt.Sprintf("note-%d", i*31%977))
	if i%11 == 0 {
		note = types.Null(types.String)
	}
	return types.Row{
		types.NewInt(int64(i)),
		types.NewString(fmt.Sprintf("c%d", i%4)),
		types.NewString(fmt.Sprintf("s%d", i%3)),
		types.NewInt(int64(i / 16)), // runs of 16 on the sort key
		types.NewFloat(float64(i%250) * 0.25),
		hi,
		note,
	}
}

// fillKernel loads n rows (flushed to segments), deletes every 13th row so
// deletion bitmaps split RLE runs mid-way, then inserts extra unflushed
// buffer rows.
func fillKernel(t testing.TB, tbl *core.Table, n, buffered int) {
	t.Helper()
	rows := make([]types.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, kernelRow(i))
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.DeleteWhere(core.Where{Col: -1, Pred: func(r types.Row) bool {
		return r[0].I%13 == 0
	}}); err != nil {
		t.Fatal(err)
	}
	for i := n; i < n+buffered; i++ {
		if err := tbl.Insert(kernelRow(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func runAggMode(view *core.View, filter Node, groupCols []int, aggs []AggSpec, unfused bool) ([]types.Row, ScanStats) {
	f := CloneNode(filter)
	s := NewScan(view, f)
	s.DisableFusedKernels = unfused
	rows := Aggregate(view, f, groupCols, aggs, s)
	return rows, s.Stats
}

func runRowsMode(view *core.View, filter Node, project []int, unfused bool) []types.Row {
	s := NewScan(view, CloneNode(filter))
	s.DisableFusedKernels = unfused
	s.Project = project
	var out []types.Row
	s.Run(func(r types.Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

// kernelFilters is the shared predicate zoo: RLE range, dict equality
// (index-eligible), IN list, bit-packed and float comparisons with nulls,
// conjunctions mixing encodings, a disjunction (legacy fallback inside the
// fused driver), and an empty-selection predicate.
func kernelFilters() map[string]Node {
	return map[string]Node{
		"none":       nil,
		"rle-range":  NewLeaf(3, vector.Ge, types.NewInt(10)),
		"rle-eq":     NewLeaf(3, vector.Eq, types.NewInt(4)),
		"dict-eq":    NewLeaf(1, vector.Eq, types.NewString("c2")),
		"dict-gt":    NewLeaf(1, vector.Gt, types.NewString("c1")),
		"in-list":    NewIn(2, []types.Value{types.NewString("s0"), types.NewString("s2")}),
		"bitpack-gt": NewLeaf(5, vector.Gt, types.NewInt(50000)),
		"float-lt":   NewLeaf(4, vector.Lt, types.NewFloat(31.25)),
		"and-mixed": NewAnd(
			NewLeaf(3, vector.Ge, types.NewInt(5)),
			NewLeaf(1, vector.Eq, types.NewString("c1")),
			NewLeaf(4, vector.Lt, types.NewFloat(50)),
		),
		"or-fallback": NewOr(
			NewLeaf(1, vector.Eq, types.NewString("c0")),
			NewLeaf(3, vector.Lt, types.NewInt(3)),
		),
		"empty": NewLeaf(3, vector.Lt, types.NewInt(-1)),
	}
}

func TestFusedUnfusedAggregateEquivalence(t *testing.T) {
	tbl := newKernelTable(t, 64)
	fillKernel(t, tbl, 600, 50)
	view := tbl.Snapshot()

	expr := func(r types.Row) types.Value {
		return types.NewFloat(float64(r[3].I) * (1 - r[4].F/100))
	}
	aggSets := map[string][]AggSpec{
		"count-star":   {{Func: Count, Col: -1}},
		"int-stats":    {{Func: Sum, Col: 3}, {Func: Min, Col: 3}, {Func: Max, Col: 3}, {Func: Avg, Col: 3}},
		"float-stats":  {{Func: Sum, Col: 4}, {Func: Min, Col: 4}, {Func: Max, Col: 4}},
		"null-cols":    {{Func: Count, Col: 6}, {Func: Min, Col: 6}, {Func: Max, Col: 6}, {Func: Sum, Col: 5}, {Func: Avg, Col: 5}},
		"expr":         {{Func: Sum, Expr: expr, ExprCols: []int{3, 4}}, {Func: Avg, Expr: expr, ExprCols: []int{3, 4}}},
		"mixed-expr":   {{Func: Count, Col: -1}, {Func: Sum, Col: 3}, {Func: Sum, Expr: expr, ExprCols: []int{3, 4}}},
		"opaque-expr":  {{Func: Sum, Expr: expr}}, // nil ExprCols: fused must decline, results still equal
		"string-stats": {{Func: Min, Col: 1}, {Func: Max, Col: 2}, {Func: Count, Col: -1}},
	}
	groupings := map[string][]int{
		"global":      nil,
		"dict":        {1},
		"dict2":       {1, 2},
		"non-dict":    {3},
		"dict+nulls":  {6},
		"dict-status": {2},
	}
	for fname, filter := range kernelFilters() {
		for gname, groupCols := range groupings {
			for aname, aggs := range aggSets {
				name := fname + "/" + gname + "/" + aname
				fused, fstats := runAggMode(view, filter, groupCols, aggs, false)
				unfused, _ := runAggMode(view, filter, groupCols, aggs, true)
				if !reflect.DeepEqual(fused, unfused) {
					t.Fatalf("%s: fused != unfused\nfused:   %v\nunfused: %v", name, fused, unfused)
				}
				if fstats.RowsScanned > 0 && fstats.RowsOutput < 0 {
					t.Fatalf("%s: bogus stats %+v", name, fstats)
				}
			}
		}
	}
}

func TestFusedUnfusedRowEquivalence(t *testing.T) {
	tbl := newKernelTable(t, 64)
	fillKernel(t, tbl, 400, 30)
	view := tbl.Snapshot()
	projections := [][]int{nil, {0, 3}, {1, 4, 6}}
	for fname, filter := range kernelFilters() {
		for pi, proj := range projections {
			fused := runRowsMode(view, filter, proj, false)
			unfused := runRowsMode(view, filter, proj, true)
			if !reflect.DeepEqual(fused, unfused) {
				t.Fatalf("%s/proj%d: fused rows != unfused (%d vs %d)", fname, pi, len(fused), len(unfused))
			}
		}
	}
}

func TestFusedUnfusedCountEquivalence(t *testing.T) {
	tbl := newKernelTable(t, 64)
	fillKernel(t, tbl, 500, 40)
	view := tbl.Snapshot()
	for fname, filter := range kernelFilters() {
		sf := NewScan(view, CloneNode(filter))
		su := NewScan(view, CloneNode(filter))
		su.DisableFusedKernels = true
		if got, want := sf.Count(), su.Count(); got != want {
			t.Fatalf("%s: fused count %d != unfused %d", fname, got, want)
		}
	}
}

// TestFastCountUsesMetadataOnly: a filterless fused count must read no
// column vectors and visit no segments — it answers from segment meta plus
// the buffer walk — while still matching the full-scan count exactly,
// deletes and buffer rows included.
func TestFastCountUsesMetadataOnly(t *testing.T) {
	tbl := newKernelTable(t, 64)
	fillKernel(t, tbl, 500, 40)
	view := tbl.Snapshot()
	fused := NewScan(view, nil)
	got := fused.Count()
	unfused := NewScan(view, nil)
	unfused.DisableFusedKernels = true
	if want := unfused.Count(); got != want {
		t.Fatalf("fast count %d != scan count %d", got, want)
	}
	if fused.Stats.SegmentsScanned != 0 || fused.Stats.VecDecodes != 0 {
		t.Fatalf("fast count touched data: %+v", fused.Stats)
	}
	if unfused.Stats.SegmentsScanned == 0 {
		t.Fatal("unfused count did not scan segments (baseline broken)")
	}
}

// TestRunStraddlesSelectionGap pins the RLE boundary case from the issue: a
// deletion carves a gap out of the middle of a run, and the span kernel
// must clip the run to both sides of the gap.
func TestRunStraddlesSelectionGap(t *testing.T) {
	tbl := newKernelTable(t, 256)
	rows := make([]types.Row, 0, 64)
	for i := 0; i < 64; i++ {
		rows = append(rows, kernelRow(i))
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	// Delete ids 20..24: val = id/16, so the val==1 run [16,32) gains an
	// interior gap.
	if _, err := tbl.DeleteWhere(core.Where{Col: -1, Pred: func(r types.Row) bool {
		return r[0].I >= 20 && r[0].I < 25
	}}); err != nil {
		t.Fatal(err)
	}
	view := tbl.Snapshot()
	filter := NewLeaf(3, vector.Eq, types.NewInt(1))
	fused := NewScan(view, CloneNode(filter))
	if got := fused.Count(); got != 11 {
		t.Fatalf("straddled-run fused count = %d, want 11", got)
	}
	unfused := NewScan(view, CloneNode(filter))
	unfused.DisableFusedKernels = true
	if got := unfused.Count(); got != 11 {
		t.Fatalf("straddled-run unfused count = %d, want 11", got)
	}
	// Single-run segment: every val identical.
	one := newKernelTable(t, 256)
	same := make([]types.Row, 0, 32)
	for i := 0; i < 32; i++ {
		r := kernelRow(i)
		r[3] = types.NewInt(5)
		same = append(same, r)
	}
	if err := one.BulkLoad(same); err != nil {
		t.Fatal(err)
	}
	v1 := one.Snapshot()
	if got := NewScan(v1, NewLeaf(3, vector.Eq, types.NewInt(5))).Count(); got != 32 {
		t.Fatalf("single-run segment count = %d, want 32", got)
	}
	if got := NewScan(v1, NewLeaf(3, vector.Eq, types.NewInt(6))).Count(); got != 0 {
		t.Fatalf("single-run segment miss count = %d, want 0", got)
	}
}

// TestFusedCountersSurface checks the new observability counters: fused
// filters report span-filtered segments, fused aggregations report fused
// segments and — for plain global aggregates — materialize nothing.
func TestFusedCountersSurface(t *testing.T) {
	tbl := newKernelTable(t, 64)
	fillKernel(t, tbl, 600, 0)
	view := tbl.Snapshot()
	filter := NewLeaf(3, vector.Ge, types.NewInt(10))
	aggs := []AggSpec{{Func: Count, Col: -1}, {Func: Sum, Col: 3}, {Func: Sum, Col: 4}}

	_, fstats := runAggMode(view, filter, nil, aggs, false)
	if fstats.EncodedFilterSegs == 0 {
		t.Fatalf("no span-filtered segments recorded: %+v", fstats)
	}
	if fstats.FusedAggSegs == 0 {
		t.Fatalf("no fused-agg segments recorded: %+v", fstats)
	}
	if fstats.RowsMaterialized != 0 {
		t.Fatalf("plain global aggregate materialized %d rows", fstats.RowsMaterialized)
	}

	_, ustats := runAggMode(view, filter, nil, aggs, true)
	if ustats.EncodedFilterSegs != 0 || ustats.FusedAggSegs != 0 {
		t.Fatalf("unfused run reported fused counters: %+v", ustats)
	}

	// Materializing scans count their built rows in both modes.
	s := NewScan(view, CloneNode(filter))
	var rows int64
	s.Run(func(types.Row) bool { rows++; return true })
	if s.Stats.RowsMaterialized != rows {
		t.Fatalf("RowsMaterialized = %d, want %d", s.Stats.RowsMaterialized, rows)
	}
}

// TestFusedEquivalenceUnderMerges races fused-vs-unfused aggregation
// against concurrent inserts, flushes and LSM merges; every snapshot must
// agree between the two modes (run under -race in CI).
func TestFusedEquivalenceUnderMerges(t *testing.T) {
	tbl := newKernelTable(t, 32)
	fillKernel(t, tbl, 256, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 10000
		for {
			select {
			case <-stop:
				return
			default:
			}
			for k := 0; k < 64; k++ {
				_ = tbl.Insert(kernelRow(i))
				i++
			}
			_, _ = tbl.Flush()
			tbl.Merge()
		}
	}()
	filter := NewAnd(
		NewLeaf(3, vector.Ge, types.NewInt(2)),
		NewLeaf(1, vector.Gt, types.NewString("c0")),
	)
	aggs := []AggSpec{{Func: Count, Col: -1}, {Func: Sum, Col: 3}, {Func: Min, Col: 4}, {Func: Max, Col: 6}}
	for round := 0; round < 30; round++ {
		view := tbl.Snapshot()
		fused, _ := runAggMode(view, filter, []int{1}, aggs, false)
		unfused, _ := runAggMode(view, filter, []int{1}, aggs, true)
		if !reflect.DeepEqual(fused, unfused) {
			close(stop)
			wg.Wait()
			t.Fatalf("round %d: fused != unfused under merge churn\nfused:   %v\nunfused: %v", round, fused, unfused)
		}
	}
	close(stop)
	wg.Wait()
}
