// Per-workspace partitioning of the decoded-vector cache (§5 of the
// paper, via its workspace isolation story): read-only workspaces exist so
// a heavy analytic workload cannot degrade the primary's operational
// latency, but a single process-wide vector cache re-couples them — a cold
// analytic sweep on one workspace evicts the primary's hot set. The group
// gives each workspace (and the primary) its own LRU hot tier with a byte
// share of the budget, backed by one shared second tier that holds demoted
// vectors, so an eviction from a hot tier is a demotion, not a decode
// sentence: any partition that later touches the same (segment, column)
// re-pins the vector from the backing tier without decoding.
//
// Invalidation and heat stay global: a merge retiring a segment purges
// every hot tier and the backing tier (anything less would resurrect stale
// vectors), and SegmentHeat sums residency across all tiers so merge
// planning sees the whole node's cached footprint.
package exec

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"s2db/internal/colstore"
	"s2db/internal/core"
)

// PrimaryCachePartition is the reserved partition name for the primary
// cluster's share in WorkspaceCacheShares-style maps and stats.
const PrimaryCachePartition = "primary"

// sharedEntry is one demoted decoded vector resident in the backing tier.
type sharedEntry struct {
	key  vecKey
	ints []int64
	strs []string
	size int64
	el   *list.Element
}

// sharedTier is the group's second cache tier: an LRU of fully decoded
// vectors demoted from partition hot tiers. It has no single-flight
// machinery — entries arrive decoded and lookups either hit or miss.
type sharedTier struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	entries  map[vecKey]*sharedEntry
	lru      *list.List // of *sharedEntry, front = most recent

	hits, evictions, invalidations, demotions int64
}

func newSharedTier(maxBytes int64) *sharedTier {
	return &sharedTier{
		maxBytes: maxBytes,
		entries:  make(map[vecKey]*sharedEntry),
		lru:      list.New(),
	}
}

// put installs a demoted vector. A vector for a retired segment is refused
// (the retirement check runs under the tier lock, so it cannot interleave
// with an invalidation purge), as is a vector larger than the whole tier.
func (s *sharedTier) put(k vecKey, ints []int64, strs []string, size int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k.seg.Retired() || size > s.maxBytes {
		return false
	}
	if old, ok := s.entries[k]; ok {
		// Two partitions can demote the same key; keep the newer payload.
		s.lru.Remove(old.el)
		s.curBytes -= old.size
	}
	e := &sharedEntry{key: k, ints: ints, strs: strs, size: size}
	e.el = s.lru.PushFront(e)
	s.entries[k] = e
	s.curBytes += size
	s.demotions++
	for s.curBytes > s.maxBytes {
		back := s.lru.Back()
		if back == nil {
			break
		}
		v := back.Value.(*sharedEntry)
		s.lru.Remove(back)
		delete(s.entries, v.key)
		s.curBytes -= v.size
		s.evictions++
	}
	return true
}

// take removes and returns the vector for k, if resident. The caller
// installs it in its own hot tier (promotion).
func (s *sharedTier) take(k vecKey) (ints []int64, strs []string, size int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, found := s.entries[k]
	if !found {
		return nil, nil, 0, false
	}
	s.lru.Remove(e.el)
	delete(s.entries, k)
	s.curBytes -= e.size
	s.hits++
	return e.ints, e.strs, e.size, true
}

// peek returns the resident payload without removing or promoting it.
func (s *sharedTier) peek(k vecKey) (ints []int64, strs []string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, found := s.entries[k]; found {
		return e.ints, e.strs, true
	}
	return nil, nil, false
}

// invalidate drops every vector of the segment from the backing tier.
func (s *sharedTier) invalidate(seg *colstore.Segment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, e := range s.entries {
		if k.seg != seg {
			continue
		}
		s.lru.Remove(e.el)
		delete(s.entries, k)
		s.curBytes -= e.size
		s.invalidations++
	}
}

// heatBytes reports the segment's resident bytes in the backing tier.
func (s *sharedTier) heatBytes(seg *colstore.Segment) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for k, e := range s.entries {
		if k.seg == seg {
			n += e.size
		}
	}
	return n
}

// stats snapshots the backing tier as VecCacheStats: Hits counts
// promotions served, Misses/Waits stay zero (the tier has no decode path).
func (s *sharedTier) stats() VecCacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return VecCacheStats{
		Hits:          s.hits,
		Evictions:     s.evictions,
		Invalidations: s.invalidations,
		Demotions:     s.demotions,
		Entries:       s.lru.Len(),
		Bytes:         s.curBytes,
	}
}

// VecCacheGroup partitions one decoded-vector cache budget across the
// primary cluster and its read-only workspaces. Each partition is a
// *VecCache hot tier with its own byte budget; all partitions share one
// backing tier for demoted vectors. A nil group (disabled cache) is valid:
// every method degrades to a no-op and Primary/Attach return nil handles.
type VecCacheGroup struct {
	totalBytes int64
	hotPool    int64 // budget split across partition hot tiers
	shares     map[string]float64
	unified    bool // ablation: one partition shared by everyone
	shared     *sharedTier

	mu      sync.Mutex
	primary *VecCache
	wss     map[string]*VecCache
}

// ValidateCacheShares checks a WorkspaceCacheShares map: every share must
// be in (0, 1], the key must be a possible workspace name (non-empty), and
// the shares — including the reserved "primary" entry — must sum to at
// most 1.0, leaving the primary a non-empty remainder when it has no
// explicit share.
func ValidateCacheShares(shares map[string]float64) error {
	sum := 0.0
	for name, s := range shares {
		if name == "" {
			return fmt.Errorf("share for nonexistent workspace: name cannot be empty")
		}
		if s <= 0 {
			return fmt.Errorf("workspace %q: share %v must be > 0", name, s)
		}
		if s > 1 {
			return fmt.Errorf("workspace %q: share %v exceeds the whole budget", name, s)
		}
		sum += s
	}
	if sum > 1.0 {
		return fmt.Errorf("shares sum to %v, over the whole budget (1.0)", sum)
	}
	if _, ok := shares[PrimaryCachePartition]; !ok && len(shares) > 0 && sum >= 1.0 {
		return fmt.Errorf("workspace shares sum to %v, leaving the primary no budget", sum)
	}
	return nil
}

// NewVecCacheGroup builds a partitioned cache over totalBytes. shares maps
// workspace names (and optionally the reserved "primary") to fractions of
// the hot-tier pool; partitions without an explicit share split the
// unreserved remainder evenly, with the primary floored at half of it.
// unified restores the pre-partitioning behavior — one process-wide LRU
// that every workspace shares with the primary (ablation/benchmark knob).
// totalBytes <= 0 disables the cache (nil group, no error); invalid shares
// error regardless so misconfiguration never passes silently.
func NewVecCacheGroup(totalBytes int, shares map[string]float64, unified bool) (*VecCacheGroup, error) {
	if err := ValidateCacheShares(shares); err != nil {
		return nil, err
	}
	if totalBytes <= 0 {
		return nil, nil
	}
	g := &VecCacheGroup{
		totalBytes: int64(totalBytes),
		shares:     shares,
		unified:    unified,
		wss:        make(map[string]*VecCache),
	}
	if unified {
		g.hotPool = g.totalBytes
		g.primary = NewVecCache(totalBytes)
		g.primary.name = PrimaryCachePartition
		g.primary.group = g
		return g, nil
	}
	// A quarter of the budget backs the shared second tier; the rest is the
	// hot pool split across partitions.
	sharedBytes := g.totalBytes / 4
	g.hotPool = g.totalBytes - sharedBytes
	g.shared = newSharedTier(sharedBytes)
	g.primary = newVecCachePartition(PrimaryCachePartition, g)
	g.recomputeLocked()
	return g, nil
}

// Primary returns the primary cluster's partition handle (nil when the
// group is disabled).
func (g *VecCacheGroup) Primary() *VecCache {
	if g == nil {
		return nil
	}
	return g.primary
}

// AttachPartition provisions (or, in unified mode, aliases) the hot-tier
// partition for a workspace and rebalances every partition's budget.
func (g *VecCacheGroup) AttachPartition(name string) (*VecCache, error) {
	if g == nil {
		return nil, nil
	}
	if name == "" {
		return nil, fmt.Errorf("veccache: workspace name cannot be empty")
	}
	if g.unified {
		return g.primary, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.wss[name]; dup {
		return nil, fmt.Errorf("veccache: partition %q already attached", name)
	}
	p := newVecCachePartition(name, g)
	g.wss[name] = p
	g.recomputeLocked()
	return p, nil
}

// DetachPartition drops a workspace's partition and rebalances. The
// partition's entries are discarded, not demoted: its segments belong to
// the detached workspace's replica tables and can never be referenced
// again.
func (g *VecCacheGroup) DetachPartition(name string) {
	if g == nil || g.unified {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	p, ok := g.wss[name]
	if !ok {
		return
	}
	delete(g.wss, name)
	p.discardAll()
	g.recomputeLocked()
}

// recomputeLocked assigns hot-tier budgets: explicit shares are honored
// verbatim; the unreserved remainder is split evenly across the partitions
// without one, with the primary floored at half of that remainder so
// attaching workspaces can never squeeze the primary below it. Caller
// holds g.mu.
func (g *VecCacheGroup) recomputeLocked() {
	explicit := 0.0
	var unshared []*VecCache
	for name, p := range g.wss {
		if s, ok := g.shares[name]; ok {
			explicit += s
			p.resize(g.budget(s))
		} else {
			unshared = append(unshared, p)
		}
	}
	pf, pfExplicit := g.shares[PrimaryCachePartition]
	free := 1.0 - explicit
	if pfExplicit {
		free -= pf
	}
	if free < 0 {
		free = 0
	}
	if !pfExplicit {
		// Default split with a primary floor: the primary never drops below
		// half of the unreserved pool, however many workspaces attach.
		pf = free
		if n := len(unshared); n > 0 {
			pf = free / float64(1+n)
			if floor := free / 2; pf < floor {
				pf = floor
			}
		}
	}
	g.primary.resize(g.budget(pf))
	if len(unshared) > 0 {
		each := (free - pf) / float64(len(unshared))
		if pfExplicit {
			each = free / float64(len(unshared))
		}
		for _, p := range unshared {
			p.resize(g.budget(each))
		}
	}
}

// budget converts a fraction of the hot pool to bytes (minimum 1 so a
// partition's admission filter stays well-defined).
func (g *VecCacheGroup) budget(frac float64) int64 {
	b := int64(frac * float64(g.hotPool))
	if b < 1 {
		b = 1
	}
	return b
}

// partitions snapshots every hot tier (primary first).
func (g *VecCacheGroup) partitions() []*VecCache {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*VecCache, 0, 1+len(g.wss))
	out = append(out, g.primary)
	names := make([]string, 0, len(g.wss))
	for name := range g.wss {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, g.wss[name])
	}
	return out
}

// InvalidateSegment purges a retired segment's vectors from every tier:
// the retirement flag is set first, so a demotion or promotion racing the
// purge either completes before it (and is purged) or observes the flag
// under its tier lock and refuses the install — stale vectors cannot
// resurface in any tier (it implements core.DecodedVectorCache).
func (g *VecCacheGroup) InvalidateSegment(seg *colstore.Segment) {
	if g == nil {
		return
	}
	seg.Retire()
	for _, p := range g.partitions() {
		p.invalidateLocal(seg)
	}
	if g.shared != nil {
		g.shared.invalidate(seg)
	}
}

// SegmentHeat sums the segment's cached footprint across every hot tier
// and the backing tier, so merge planning sees node-wide residency (it
// implements core.VectorResidency).
func (g *VecCacheGroup) SegmentHeat(seg *colstore.Segment) (residentBytes, hits int64) {
	if g == nil {
		return 0, 0
	}
	for _, p := range g.partitions() {
		b, h := p.localHeat(seg)
		residentBytes += b
		hits += h
	}
	if g.shared != nil {
		residentBytes += g.shared.heatBytes(seg)
	}
	return residentBytes, hits
}

// PeekInts returns a resident decoded int vector from any tier without
// promoting it (it implements colstore.VectorSource for merge-time reuse).
func (g *VecCacheGroup) PeekInts(seg *colstore.Segment, col int) ([]int64, bool) {
	if g == nil {
		return nil, false
	}
	k := vecKey{seg: seg, col: col}
	for _, p := range g.partitions() {
		if v, ok := p.peekIntsLocal(k); ok {
			return v, true
		}
	}
	if g.shared != nil {
		if ints, _, ok := g.shared.peek(k); ok && ints != nil {
			return ints, true
		}
	}
	return nil, false
}

// PeekStrs is PeekInts for string columns.
func (g *VecCacheGroup) PeekStrs(seg *colstore.Segment, col int) ([]string, bool) {
	if g == nil {
		return nil, false
	}
	k := vecKey{seg: seg, col: col}
	for _, p := range g.partitions() {
		if v, ok := p.peekStrsLocal(k); ok {
			return v, true
		}
	}
	if g.shared != nil {
		if _, strs, ok := g.shared.peek(k); ok && strs != nil {
			return strs, true
		}
	}
	return nil, false
}

// GroupStats snapshots every tier: the primary and each workspace hot tier
// by name, plus the shared backing tier.
type GroupStats struct {
	Primary    VecCacheStats
	Shared     VecCacheStats
	Workspaces map[string]VecCacheStats
}

// Stats snapshots all tiers; zero-valued on a nil (disabled) group.
func (g *VecCacheGroup) Stats() GroupStats {
	gs := GroupStats{Workspaces: map[string]VecCacheStats{}}
	if g == nil {
		return gs
	}
	gs.Primary = g.primary.Stats()
	if g.shared != nil {
		gs.Shared = g.shared.stats()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for name, p := range g.wss {
		gs.Workspaces[name] = p.Stats()
	}
	return gs
}

// Total folds every tier's counters into one VecCacheStats.
func (s GroupStats) Total() VecCacheStats {
	t := s.Primary
	t.Add(s.Shared)
	for _, ws := range s.Workspaces {
		t.Add(ws)
	}
	return t
}

// The group satisfies the same maintenance contracts as a standalone cache.
var (
	_ core.DecodedVectorCache = (*VecCacheGroup)(nil)
	_ core.VectorResidency    = (*VecCacheGroup)(nil)
	_ colstore.VectorSource   = (*VecCacheGroup)(nil)
)
