package exec

import (
	"s2db/internal/colstore"
	"s2db/internal/core"
	"s2db/internal/types"
)

// JoinMode pins the join strategy for ablation; JoinAuto decides
// adaptively (§5.1).
type JoinMode uint8

// Join strategy modes.
const (
	JoinAuto JoinMode = iota
	JoinForceHash
	JoinForceIndex
)

// EquiJoin joins buildRows (the smaller side, already materialized) against
// the probe view on equality of key columns, emitting matched pairs.
//
// It models the paper's "join index filter" (§5.1): when the build side is
// small and the probe key is indexed, the probe side is filtered by index
// probes — like a bloom filter but with no false positives — instead of
// scanned. When the number of distinct probe keys is too high relative to
// the probe table size, the index filter is dynamically disabled and
// execution falls back to a hash join that scans the probe side.
// probeFilter (may be nil) applies additional clauses to probe rows.
// It returns true when the index path was used.
func EquiJoin(
	buildRows []types.Row, buildKey []int,
	probe *core.View, probeKey []int, probeFilter Node,
	mode JoinMode, stats *ScanStats,
	emit func(build, probeRow types.Row) bool,
) bool {
	// Hash the build side by key.
	buildMap := make(map[string][]types.Row, len(buildRows))
	var keyBuf []byte
	for _, r := range buildRows {
		keyBuf = keyBuf[:0]
		for _, c := range buildKey {
			keyBuf = types.EncodeKey(keyBuf, r[c])
		}
		buildMap[string(keyBuf)] = append(buildMap[string(keyBuf)], r)
	}

	idx := probe.Index()
	indexable := mode != JoinForceHash &&
		len(probeKey) == 1 && idx != nil && idx.HasColumn(probeKey[0])
	if indexable && mode != JoinForceIndex {
		// Dynamic disable: probing wins only when the build side is small
		// relative to the probe table (§5.1). The factor accounts for the
		// cost asymmetry between a seek-materialized index match (random
		// access into compressed columns) and a row visited by a
		// sequential vectorized scan.
		probeSize := probe.NumRows()
		if len(buildMap)*64 > probeSize {
			indexable = false
			if stats != nil {
				stats.JoinIndexFallbacks++
			}
		}
	}

	if indexable {
		if stats != nil {
			stats.JoinIndexFilters++
		}
		// Index path: probe each distinct build key.
		col := probeKey[0]
		seen := map[string]bool{}
		for _, r := range buildRows {
			v := r[buildKey[0]]
			k := string(types.EncodeKey(nil, v))
			if seen[k] {
				continue
			}
			seen[k] = true
			builds := buildMap[k]
			// Buffer rows.
			stop := false
			probe.ScanBuffer(func(pr types.Row) bool {
				if !types.Equal(pr[col], v) {
					return true
				}
				if probeFilter != nil && !probeFilter.EvalRow(pr) {
					return true
				}
				for _, b := range builds {
					if !emit(b, pr) {
						stop = true
						return false
					}
				}
				return true
			})
			if stop {
				return true
			}
			// Segment rows via the index, restricted to the view.
			matches, probes := idx.LookupColumn(col, v)
			if stats != nil {
				stats.GlobalIndexProbes += int64(probes)
			}
			for _, m := range matches {
				meta := findMeta(probe, m.SegID)
				if meta == nil {
					continue
				}
				for _, off := range m.Rows {
					if meta.Deleted.Get(int(off)) {
						continue
					}
					pr := meta.Seg.RowAt(int(off))
					if probeFilter != nil && !probeFilter.EvalRow(pr) {
						continue
					}
					for _, b := range builds {
						if !emit(b, pr) {
							return true
						}
					}
				}
			}
		}
		return true
	}

	// Hash-join fallback: scan the probe side.
	scan := NewScan(probe, probeFilter)
	stop := false
	probeRow := func(pr types.Row) bool {
		keyBuf = keyBuf[:0]
		for _, c := range probeKey {
			keyBuf = types.EncodeKey(keyBuf, pr[c])
		}
		for _, b := range buildMap[string(keyBuf)] {
			if !emit(b, pr) {
				return false
			}
		}
		return true
	}
	scan.RunBuffer(func(pr types.Row) bool {
		if !probeRow(pr) {
			stop = true
			return false
		}
		return true
	})
	if stop {
		return false
	}
	scan.RunSegments(func(ctx *SegContext, sel []int32) {
		if stop {
			return
		}
		mat := ctx.Materializer(nil, len(sel)*4 >= ctx.Meta.Seg.NumRows)
		for _, i := range sel {
			if !probeRow(mat(int(i))) {
				stop = true
				return
			}
		}
	})
	if stats != nil {
		stats.SegmentsScanned += scan.Stats.SegmentsScanned
	}
	return false
}

func findMeta(view *core.View, segID uint64) *colstore.Meta {
	for _, m := range view.Segs {
		if m.Seg.ID == segID {
			return m
		}
	}
	return nil
}
