package s2db

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func openTestDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	if cfg.MaxSegmentRows == 0 {
		cfg.MaxSegmentRows = 64
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func eventsSchema() *Schema {
	s := NewSchema(
		Column{Name: "id", Type: Int64T},
		Column{Name: "kind", Type: StringT},
		Column{Name: "amount", Type: Int64T},
		Column{Name: "score", Type: Float64T},
	)
	s.UniqueKey = []int{0}
	s.ShardKey = []int{0}
	s.SecondaryKeys = [][]int{{1}}
	s.SortKey = 2
	return s
}

func loadEvents(t *testing.T, db *DB, n int) {
	t.Helper()
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Str(fmt.Sprintf("k%d", i%4)), Int(int64(i % 50)), Float(float64(i) / 2)}
	}
	if err := db.BulkLoad("events", rows[:n/2]); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[n/2:] {
		if err := db.Insert("events", r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenInsertQuery(t *testing.T) {
	db := openTestDB(t, Config{Partitions: 2})
	if err := db.CreateTable("events", eventsSchema()); err != nil {
		t.Fatal(err)
	}
	loadEvents(t, db, 200)
	n, err := db.Table("events").Count()
	if err != nil || n != 200 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	// Point read.
	r, ok, err := db.Get("events", Int(42))
	if err != nil || !ok || r[1].S != "k2" {
		t.Fatalf("Get = %v %v %v", r, ok, err)
	}
	// Filtered query.
	n, err = db.Table("events").Where(And(Eq(1, Str("k1")), Lt(2, Int(25)))).Count()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := 0; i < 200; i++ {
		if i%4 == 1 && i%50 < 25 {
			want++
		}
	}
	if n != want {
		t.Fatalf("filtered count = %d, want %d", n, want)
	}
}

func TestQueryAggregationAcrossPartitions(t *testing.T) {
	db := openTestDB(t, Config{Partitions: 3})
	db.CreateTable("events", eventsSchema())
	loadEvents(t, db, 300)
	rows, err := db.Table("events").
		GroupBy(1).
		Agg(CountAll(), SumCol(2), AvgCol(3), MinCol(0), MaxCol(0)).
		OrderBy(OrderBy{Col: 0}).
		Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("groups = %d", len(rows))
	}
	for _, r := range rows {
		kind := r[0].S
		var wantN, wantSum, wantMin, wantMax int64
		var wantScore float64
		wantMin = 1 << 62
		for i := 0; i < 300; i++ {
			if fmt.Sprintf("k%d", i%4) != kind {
				continue
			}
			wantN++
			wantSum += int64(i % 50)
			wantScore += float64(i) / 2
			if int64(i) < wantMin {
				wantMin = int64(i)
			}
			if int64(i) > wantMax {
				wantMax = int64(i)
			}
		}
		if r[1].I != wantN || r[2].I != wantSum {
			t.Fatalf("group %s: count/sum = %v/%v, want %d/%d", kind, r[1], r[2], wantN, wantSum)
		}
		avg := wantScore / float64(wantN)
		if d := r[3].F - avg; d < -0.001 || d > 0.001 {
			t.Fatalf("group %s: avg = %v, want %v", kind, r[3].F, avg)
		}
		if r[4].I != wantMin || r[5].I != wantMax {
			t.Fatalf("group %s: min/max = %v/%v", kind, r[4], r[5])
		}
	}
}

func TestUpdateDeleteThroughFacade(t *testing.T) {
	db := openTestDB(t, Config{Partitions: 2})
	db.CreateTable("events", eventsSchema())
	loadEvents(t, db, 100)
	n, err := db.Update("events", Where{Col: 1, Val: Str("k0")}, func(r Row) Row {
		r[2] = Int(-5)
		return r
	})
	if err != nil || n != 25 {
		t.Fatalf("Update = %d, %v", n, err)
	}
	cnt, _ := db.Table("events").Where(Eq(2, Int(-5))).Count()
	if cnt != 25 {
		t.Fatalf("updated rows visible = %d", cnt)
	}
	d, err := db.Delete("events", Where{Col: 1, Val: Str("k3")})
	if err != nil || d != 25 {
		t.Fatalf("Delete = %d, %v", d, err)
	}
	total, _ := db.Table("events").Count()
	if total != 75 {
		t.Fatalf("total after delete = %d", total)
	}
}

func TestDuplicatePoliciesThroughFacade(t *testing.T) {
	db := openTestDB(t, Config{Partitions: 2})
	db.CreateTable("events", eventsSchema())
	if err := db.Insert("events", Row{Int(1), Str("k"), Int(1), Float(0)}); err != nil {
		t.Fatal(err)
	}
	err := db.Insert("events", Row{Int(1), Str("k"), Int(2), Float(0)})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("dup = %v", err)
	}
	res, err := db.InsertWith("events", InsertOptions{OnDup: DupUpdate}, Row{Int(1), Str("k"), Int(9), Float(0)})
	if err != nil || res.Updated != 1 {
		t.Fatalf("upsert = %+v, %v", res, err)
	}
	r, _, _ := db.Get("events", Int(1))
	if r[2].I != 9 {
		t.Fatal("upsert value lost")
	}
}

func TestWorkspaceQueries(t *testing.T) {
	db := openTestDB(t, Config{Partitions: 2, BlobStore: NewMemoryBlobStore()})
	db.CreateTable("events", eventsSchema())
	loadEvents(t, db, 100)
	ws, err := db.CreateWorkspace("reports")
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	n, err := db.Table("events").OnWorkspace(ws).Count()
	if err != nil || n != 100 {
		t.Fatalf("workspace count = %d, %v", n, err)
	}
	if err := ws.Detach(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryStatsExposeAdaptivity(t *testing.T) {
	db := openTestDB(t, Config{Partitions: 1, MaxSegmentRows: 32})
	db.CreateTable("events", eventsSchema())
	loadEvents(t, db, 256)
	q := db.Table("events").Where(Eq(1, Str("k1")))
	if _, err := q.Count(); err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.SegmentsScanned == 0 && st.SegmentsSkipped == 0 {
		t.Fatalf("no scan stats recorded: %+v", st)
	}
}

func TestFacadePointInTimeRestore(t *testing.T) {
	store := NewMemoryBlobStore()
	db := openTestDB(t, Config{Partitions: 2, BlobStore: store, Name: "pitrdb"})
	db.CreateTable("events", eventsSchema())
	loadEvents(t, db, 60)
	db.Flush("events")
	for pi := 0; pi < 2; pi++ {
		db.Cluster().Master(pi).NoteAppend()
		db.Cluster().Stager(pi).Step()
	}
	past := time.Now()
	time.Sleep(2 * time.Millisecond)
	if _, err := db.Delete("events", Where{Col: -1, Pred: func(Row) bool { return true }}); err != nil {
		t.Fatal(err)
	}
	for pi := 0; pi < 2; pi++ {
		db.Cluster().Master(pi).NoteAppend()
		db.Cluster().Stager(pi).Step()
	}
	restored, err := PointInTimeRestore(Config{Partitions: 2, BlobStore: store, Name: "pitrdb", MaxSegmentRows: 64},
		map[string]*Schema{"events": eventsSchema()}, past)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	n, err := restored.Table("events").Count()
	if err != nil || n != 60 {
		t.Fatalf("restored count = %d, %v", n, err)
	}
	// The live database is empty; the restore is independent state.
	live, _ := db.Table("events").Count()
	if live != 0 {
		t.Fatalf("live count = %d", live)
	}
}
