package s2db

import (
	"reflect"
	"strings"
	"testing"
)

// TestFusedKernelsSurfaceInExplain: a run through the fused path must
// report its counters in the structured plan and the rendered string, and
// the DisableFusedKernels ablation must return identical results with the
// fused counters silent.
func TestFusedKernelsSurfaceInExplain(t *testing.T) {
	fused := openTestDB(t, Config{Partitions: 2})
	ablated := openTestDB(t, Config{Partitions: 2, DisableFusedKernels: true})
	for _, db := range []*DB{fused, ablated} {
		if err := db.CreateTable("events", eventsSchema()); err != nil {
			t.Fatal(err)
		}
		loadEvents(t, db, 400)
	}
	query := func(db *DB) *Query {
		return db.Table("events").
			Where(GeName("amount", Int(10))).
			Agg(CountAll(), SumName("amount"), MinName("score"))
	}

	frows, err := query(fused).Rows()
	if err != nil {
		t.Fatal(err)
	}
	arows, err := query(ablated).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(frows, arows) {
		t.Fatalf("fused %v != ablated %v", frows, arows)
	}

	q := query(fused)
	if _, err := q.Rows(); err != nil {
		t.Fatal(err)
	}
	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategies.FusedAggSegs == 0 {
		t.Fatalf("no fused-agg segments in plan: %+v", plan.Strategies)
	}
	if plan.Strategies.RowsMaterialized != 0 {
		t.Fatalf("fused global aggregate materialized %d rows", plan.Strategies.RowsMaterialized)
	}
	if !strings.Contains(plan.String(), "fused:") {
		t.Fatalf("plan rendering missing fused line:\n%s", plan.String())
	}

	qa := query(ablated)
	if _, err := qa.Rows(); err != nil {
		t.Fatal(err)
	}
	aplan, err := qa.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if aplan.Strategies.FusedAggSegs != 0 || aplan.Strategies.EncodedFilterSegs != 0 {
		t.Fatalf("ablated run reported fused counters: %+v", aplan.Strategies)
	}
}
