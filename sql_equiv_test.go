package s2db

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// ordersSchema is the table every SQL test runs against: a unique shard
// key, a secondary key on category (so equality predicates take the index
// path in both surfaces), and a float column to exercise Int→Float literal
// coercion.
func ordersSchema() *Schema {
	s := NewSchema(
		Column{Name: "id", Type: Int64T},
		Column{Name: "category", Type: StringT},
		Column{Name: "quantity", Type: Int64T},
		Column{Name: "price", Type: Float64T},
	)
	s.UniqueKey = []int{0}
	s.ShardKey = []int{0}
	s.SecondaryKeys = [][]int{{1}}
	return s
}

// openSQLTestDB disables the decoded-vector cache so per-run scan stats
// are deterministic — equivalence asserts byte-identical stats between a
// SQL run and a builder run, which a stateful cache would skew.
func openSQLTestDB(t *testing.T, planCacheEntries int) *DB {
	t.Helper()
	db := openTestDB(t, Config{Partitions: 2, PlanCacheEntries: planCacheEntries, VectorCacheBytes: -1})
	if err := db.CreateTable("orders", ordersSchema()); err != nil {
		t.Fatal(err)
	}
	return db
}

func loadOrders(t *testing.T, db *DB, n int) {
	t.Helper()
	cats := []string{"books", "games", "tools", "music"}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Str(cats[i%len(cats)]), Int(int64(i % 7)), Float(float64(i%90) + 0.5)}
	}
	if err := db.BulkLoad("orders", rows); err != nil {
		t.Fatal(err)
	}
}

// TestSQLBuilderEquivalence asserts that every supported SQL query shape
// returns byte-identical rows and scan statistics to the hand-built
// builder query it lowers onto. Projection happens after execution, so for
// projecting selects the builder rows are projected with the same ordinal
// list before comparison.
func TestSQLBuilderEquivalence(t *testing.T) {
	db := openSQLTestDB(t, 64)
	loadOrders(t, db, 500)

	cases := []struct {
		name    string
		sql     string
		binds   []Value
		builder func() *Query
		project []int // ordinals applied to builder rows; nil = whole row
	}{
		{
			name:    "full scan",
			sql:     "SELECT * FROM orders",
			builder: func() *Query { return db.Table("orders") },
		},
		{
			name:    "secondary key equality",
			sql:     "SELECT * FROM orders WHERE category = 'books'",
			builder: func() *Query { return db.Table("orders").Where(EqName("category", Str("books"))) },
		},
		{
			name:  "bind equality",
			sql:   "SELECT * FROM orders WHERE category = ?",
			binds: []Value{Str("games")},
			builder: func() *Query {
				return db.Table("orders").Where(EqName("category", Str("games")))
			},
		},
		{
			name: "compound and/or with every operator",
			sql:  "SELECT * FROM orders WHERE (quantity >= 2 AND quantity <= 5) OR (price > 80.5 AND price < 89.0) OR id != 0",
			builder: func() *Query {
				return db.Table("orders").Where(Or(
					And(GeName("quantity", Int(2)), LeName("quantity", Int(5))),
					And(GtName("price", Float(80.5)), LtName("price", Float(89.0))),
					NeName("id", Int(0)),
				))
			},
		},
		{
			name: "in list",
			sql:  "SELECT * FROM orders WHERE category IN ('books', 'tools')",
			builder: func() *Query {
				return db.Table("orders").Where(InName("category", Str("books"), Str("tools")))
			},
		},
		{
			name: "int literal coerced to float column",
			sql:  "SELECT * FROM orders WHERE price > 85",
			builder: func() *Query {
				return db.Table("orders").Where(GtName("price", Float(85)))
			},
		},
		{
			name: "projection",
			sql:  "SELECT id, price FROM orders WHERE quantity = 3",
			builder: func() *Query {
				return db.Table("orders").Where(EqName("quantity", Int(3)))
			},
			project: []int{0, 3},
		},
		{
			name: "group by with aggregates",
			sql:  "SELECT category, count(*), sum(quantity), min(price), max(price), avg(price) FROM orders GROUP BY category",
			builder: func() *Query {
				return db.Table("orders").GroupByNames("category").
					Agg(CountAll(), SumName("quantity"), MinName("price"), MaxName("price"), AvgName("price"))
			},
		},
		{
			name: "global aggregates",
			sql:  "SELECT count(*), sum(quantity) FROM orders WHERE category = 'music'",
			builder: func() *Query {
				return db.Table("orders").Where(EqName("category", Str("music"))).
					Agg(CountAll(), SumName("quantity"))
			},
		},
		{
			name: "order by desc with limit",
			sql:  "SELECT * FROM orders WHERE quantity > 4 ORDER BY price DESC, id ASC LIMIT 17",
			builder: func() *Query {
				return db.Table("orders").Where(GtName("quantity", Int(4))).
					OrderBy(Desc("price"), Asc("id")).Limit(17)
			},
		},
		{
			name:  "limit from bind",
			sql:   "SELECT id FROM orders ORDER BY id LIMIT ?",
			binds: []Value{Int(9)},
			builder: func() *Query {
				return db.Table("orders").OrderBy(Asc("id")).Limit(9)
			},
			project: []int{0},
		},
		{
			name: "grouped order by group column",
			sql:  "SELECT category, count(*) FROM orders GROUP BY category ORDER BY category DESC",
			builder: func() *Query {
				return db.Table("orders").GroupByNames("category").Agg(CountAll()).OrderBy(Desc("category"))
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bq := tc.builder()
			want, err := bq.Rows()
			if err != nil {
				t.Fatalf("builder: %v", err)
			}
			if tc.project != nil {
				projected := make([]Row, len(want))
				for i, r := range want {
					projected[i] = r.Project(tc.project)
				}
				want = projected
			}
			got, sq, err := db.sqlQuery(context.Background(), tc.sql, tc.binds)
			if err != nil {
				t.Fatalf("sql: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("rows diverge\n sql: %v\nwant: %v", got, want)
			}
			ws, ss := bq.Stats(), sq.Stats()
			// The plan-cache outcome is the one stat the builder path cannot
			// have; everything else must match byte for byte.
			ss.PlanCacheHits, ss.PlanCacheMisses = 0, 0
			if ws != ss {
				t.Fatalf("stats diverge\n sql: %+v\nwant: %+v", ss, ws)
			}
		})
	}
}

// TestSQLDMLEquivalence runs the same logical mutations through SQL Exec
// on one table and the Go API on a twin table, then asserts both tables
// are byte-identical.
func TestSQLDMLEquivalence(t *testing.T) {
	db := openSQLTestDB(t, 64)
	if err := db.CreateTable("orders2", ordersSchema()); err != nil {
		t.Fatal(err)
	}

	// INSERT: SQL on orders, Go API on orders2.
	n, err := db.Exec("INSERT INTO orders VALUES (1, 'books', 2, 9.5), (2, 'games', 1, 20.0), (3, 'books', 7, 3.25)")
	if err != nil || n != 3 {
		t.Fatalf("insert = %d, %v", n, err)
	}
	if _, err := db.Exec("INSERT INTO orders (price, id, category, quantity) VALUES (?, ?, 'tools', 0)",
		Float(44.0), Int(4)); err != nil {
		t.Fatal(err)
	}
	err = db.Insert("orders2",
		Row{Int(1), Str("books"), Int(2), Float(9.5)},
		Row{Int(2), Str("games"), Int(1), Float(20.0)},
		Row{Int(3), Str("books"), Int(7), Float(3.25)},
		Row{Int(4), Str("tools"), Int(0), Float(44.0)},
	)
	if err != nil {
		t.Fatal(err)
	}

	// UPDATE with a compound predicate.
	un, err := db.Exec("UPDATE orders SET quantity = ?, price = 5.5 WHERE category = 'books' AND quantity > 1", Int(10))
	if err != nil {
		t.Fatal(err)
	}
	un2, err := db.Update("orders2",
		Where{Col: -1, Pred: func(r Row) bool { return r[1].S == "books" && r[2].I > 1 }},
		func(r Row) Row {
			out := append(Row(nil), r...)
			out[2] = Int(10)
			out[3] = Float(5.5)
			return out
		})
	if err != nil || un != un2 {
		t.Fatalf("update = %d vs %d, %v", un, un2, err)
	}

	// DELETE.
	dn, err := db.Exec("DELETE FROM orders WHERE id = ? OR price >= 40.0", Int(2))
	if err != nil {
		t.Fatal(err)
	}
	dn2, err := db.Delete("orders2", Where{Col: -1, Pred: func(r Row) bool { return r[0].I == 2 || r[3].F >= 40.0 }})
	if err != nil || dn != dn2 {
		t.Fatalf("delete = %d vs %d, %v", dn, dn2, err)
	}

	want, err := db.Table("orders2").OrderBy(Asc("id")).Rows()
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Query("SELECT * FROM orders ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tables diverge after DML\n sql: %v\nwant: %v", got, want)
	}
}

// TestSQLPlanCacheConcurrent executes one parameterized query from many
// goroutines — first warming the cache, so most preparations are hits —
// and asserts every run sees the same rows. Run under -race this checks
// that a shared cached plan is safe to bind and execute concurrently.
func TestSQLPlanCacheConcurrent(t *testing.T) {
	db := openSQLTestDB(t, 64)
	loadOrders(t, db, 300)

	const q = "SELECT id, price FROM orders WHERE category = ? AND quantity >= 2 ORDER BY id LIMIT 20"
	want, err := db.Query(q, Str("books"))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("warm-up query returned no rows")
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				got, err := db.Query(q, Str("books"))
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Error("concurrent cached run diverged")
					return
				}
			}
		}()
	}
	wg.Wait()

	s := db.PlanCacheStats()
	if s.TextHits < 200 {
		t.Fatalf("text-tier hits = %d, want the 200 repeat executions to hit", s.TextHits)
	}
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want exactly the warm-up compilation", s.Misses)
	}
}

// TestSQLPlanCacheStatsAndExplain checks the observable cache life cycle:
// miss on first preparation, text hit on re-execution, template hit on a
// literal variant, and the outcome surfaced through Explain and ScanStats.
func TestSQLPlanCacheStatsAndExplain(t *testing.T) {
	db := openSQLTestDB(t, 64)
	loadOrders(t, db, 100)

	_, q1, err := db.sqlQuery(context.Background(), "SELECT * FROM orders WHERE quantity = 3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := q1.Stats(); s.PlanCacheMisses != 1 || s.PlanCacheHits != 0 {
		t.Fatalf("first run: %d hits / %d misses, want 0/1", s.PlanCacheHits, s.PlanCacheMisses)
	}
	_, q2, err := db.sqlQuery(context.Background(), "SELECT * FROM orders WHERE quantity = 3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := q2.Stats(); s.PlanCacheHits != 1 || s.PlanCacheMisses != 0 {
		t.Fatalf("second run: %d hits / %d misses, want 1/0", s.PlanCacheHits, s.PlanCacheMisses)
	}

	// A different literal shares the template-tier plan.
	if _, _, err := db.sqlQuery(context.Background(), "SELECT * FROM orders WHERE quantity = 6", nil); err != nil {
		t.Fatal(err)
	}
	s := db.PlanCacheStats()
	if s.Misses != 1 || s.Hits != 2 || s.TextHits != 1 || s.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 1 miss, 2 hits (1 text), 1 template", s)
	}

	plan, err := db.Explain("SELECT * FROM orders WHERE quantity = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !plan.PlanCacheHit {
		t.Fatal("Explain of a cached statement did not report a hit")
	}
	if plan.SQL != "select * from orders where quantity = ?" {
		t.Fatalf("plan template = %q", plan.SQL)
	}
	if plan.Statement != "select" {
		t.Fatalf("plan statement = %q", plan.Statement)
	}
	rendered := plan.String()
	for _, want := range []string{"sql: select * from orders", "plan cache: hit"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("plan rendering missing %q:\n%s", want, rendered)
		}
	}

	// DML explains without executing.
	before, _ := db.Table("orders").Count()
	dplan, err := db.Explain("DELETE FROM orders WHERE quantity = 3")
	if err != nil {
		t.Fatal(err)
	}
	if dplan.Statement != "delete" {
		t.Fatalf("delete plan statement = %q", dplan.Statement)
	}
	after, _ := db.Table("orders").Count()
	if before != after {
		t.Fatal("Explain executed the DELETE")
	}
}

// TestSQLPlanCacheDisabled covers the PlanCacheEntries=0 ablation: every
// preparation compiles, stats stay zero, results are unaffected.
func TestSQLPlanCacheDisabled(t *testing.T) {
	db := openSQLTestDB(t, 0)
	loadOrders(t, db, 100)

	const q = "SELECT count(*) FROM orders WHERE quantity = ?"
	for i := 0; i < 3; i++ {
		rows, err := db.Query(q, Int(3))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0][0].I == 0 {
			t.Fatalf("rows = %v", rows)
		}
	}
	if s := db.PlanCacheStats(); s != (PlanCacheStats{}) {
		t.Fatalf("disabled cache reported activity: %+v", s)
	}
	plan, err := db.Explain(q, Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if plan.PlanCacheHit {
		t.Fatal("disabled cache reported a hit")
	}
	if !strings.Contains(plan.String(), "plan cache: off") {
		t.Fatalf("plan rendering should say the cache is off:\n%s", plan.String())
	}
}

// TestSQLErrors pins the error surface: typed parse errors with positions,
// column errors annotated with the identifier's position in the original
// text (including on the cache-hit path, where no lexing happened), bind
// arity and type mismatches.
func TestSQLErrors(t *testing.T) {
	db := openSQLTestDB(t, 64)
	loadOrders(t, db, 50)

	t.Run("parse error position", func(t *testing.T) {
		_, err := db.Query("SELECT * FROM orders WHERE price > > 1")
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("error %T is not *ParseError: %v", err, err)
		}
		if pe.Pos.Line != 1 || pe.Pos.Col != 36 {
			t.Fatalf("position = %s, want 1:36", pe.Pos)
		}
	})

	t.Run("unknown column position on cache hit", func(t *testing.T) {
		const q = "SELECT * FROM orders WHERE nope = 1"
		for i := 0; i < 2; i++ { // second iteration prepares via the cache
			_, err := db.Query(q)
			var ce *ColumnError
			if !errors.As(err, &ce) {
				t.Fatalf("run %d: error %T is not *ColumnError: %v", i, err, err)
			}
			if ce.Name != "nope" {
				t.Fatalf("run %d: column = %q", i, ce.Name)
			}
			if ce.Pos.Line != 1 || ce.Pos.Col != 28 {
				t.Fatalf("run %d: position = %s, want 1:28", i, ce.Pos)
			}
		}
	})

	t.Run("bind arity", func(t *testing.T) {
		if _, err := db.Query("SELECT * FROM orders WHERE id = ?"); err == nil {
			t.Fatal("missing bind accepted")
		}
		if _, err := db.Query("SELECT * FROM orders WHERE id = ?", Int(1), Int(2)); err == nil {
			t.Fatal("extra bind accepted")
		}
	})

	t.Run("type mismatch", func(t *testing.T) {
		_, err := db.Query("SELECT * FROM orders WHERE quantity = 'three'")
		var ce *ColumnError
		if !errors.As(err, &ce) {
			t.Fatalf("error %T is not *ColumnError: %v", err, err)
		}
	})

	t.Run("unknown table", func(t *testing.T) {
		if _, err := db.Query("SELECT * FROM nothere"); err == nil {
			t.Fatal("unknown table accepted")
		}
	})

	t.Run("select via exec and dml via query", func(t *testing.T) {
		if _, err := db.Exec("SELECT * FROM orders"); err == nil {
			t.Fatal("Exec accepted a SELECT")
		}
		if _, err := db.Query("DELETE FROM orders"); err == nil {
			t.Fatal("Query accepted a DELETE")
		}
	})

	t.Run("negative limit bind", func(t *testing.T) {
		if _, err := db.Query("SELECT * FROM orders LIMIT ?", Int(-1)); err == nil {
			t.Fatal("negative LIMIT accepted")
		}
	})
}

// TestSQLTextTierSkipsLexing sanity-checks the exact-text fast path
// end-to-end through fmt-built texts that are bytewise identical.
func TestSQLTextTierSkipsLexing(t *testing.T) {
	db := openSQLTestDB(t, 8)
	loadOrders(t, db, 60)
	for i := 0; i < 5; i++ {
		q := fmt.Sprintf("SELECT * FROM orders WHERE quantity = %d", i%2)
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	s := db.PlanCacheStats()
	// 5 executions over 2 distinct texts sharing 1 template: the first text
	// compiles, the second hits the template tier, and the 3 repeats hit
	// the exact-text tier.
	if s.Misses != 1 || s.TextHits != 3 || s.Hits != 4 {
		t.Fatalf("stats = %+v, want 1 miss / 4 hits (3 text)", s)
	}
}
