package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"s2db/internal/blob"
	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/exec"
	"s2db/internal/types"
	"s2db/internal/vector"
)

// payloadLatencyStore injects blob latency on segment data-file reads only
// (keys under ".../data/"), leaving manifests, snapshots and log chunks
// fast — the metric under test is payload hydration, and both restore modes
// pay the metadata reads identically. started/completed count data-file
// fetches so the harness can prove a restore returned before the first
// payload fetch finished.
type payloadLatencyStore struct {
	blob.Store
	latency   time.Duration
	started   atomic.Int64
	completed atomic.Int64
}

func (s *payloadLatencyStore) Get(key string) ([]byte, error) {
	if strings.Contains(key, "/data/") {
		s.started.Add(1)
		defer s.completed.Add(1)
		if s.latency > 0 {
			time.Sleep(s.latency)
		}
	}
	return s.Store.Get(key)
}

func restoreSchema() *types.Schema {
	s := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "val", Type: types.Int64},
		types.Column{Name: "tag", Type: types.String},
	)
	s.UniqueKey = []int{0}
	s.ShardKey = []int{0}
	s.SecondaryKeys = [][]int{{2}}
	return s
}

// restoreBench measures lazy segment hydration (PR 9): RestoreState installs
// metadata-only stubs in O(manifest) and a per-table worker pool pulls
// payloads behind it — demand fetches from blocked scans first, view-order
// readahead after. Three scenarios against a blob store with per-payload
// fetch latency:
//
//   - pitr: PointInTimeRestore + RestoreTables, eager (the ablation: every
//     payload loads serially before restore returns) vs lazy (returns after
//     the manifest; readahead warms in parallel). Also times the first
//     analytic query on the cold lazy restore (demand hydration) and the
//     wait until fully warm.
//   - workspace: CreateWorkspace bootstrapping from a blob snapshot; lazy
//     must return before the first payload fetch completes.
//   - equivalence: the lazy and eager restores answer identical queries.
//
// Results land in BENCH_PR9.json. smoke shrinks rows and latency and skips
// the JSON artifact.
func restoreBench(out string, smoke bool) error {
	rows, segRows := 16_384, 512
	latency := 5 * time.Millisecond
	minSpeedup := 4.0
	if smoke {
		rows, segRows = 2_048, 128
		latency = 2 * time.Millisecond
		minSpeedup = 1.5 // tiny manifests shrink the gap; smoke checks the harness
	}

	type mode struct {
		name  string
		eager bool

		store *payloadLatencyStore

		loadedSegs       int64
		restoreMs        float64
		payloadsAtReturn int64
		firstQueryMs     float64
		fullWarmMs       float64
		queryRows        int64
		totalCount       int64

		wsCreateMs          float64
		wsPayloadsDoneAtRet int64
		wsPayloadsAtRet     int64
		wsQueryMs           float64
		wsCount             int64
	}

	// build loads a primary cluster and stages everything to blob. CacheBytes
	// is tiny so uploaded data files evict immediately: every restore and
	// workspace bootstrap fetches payloads cold from the blob store.
	build := func(m *mode) (*cluster.Cluster, time.Time, error) {
		m.store = &payloadLatencyStore{Store: blob.NewMemory(), latency: latency}
		cfg := cluster.Config{
			Name: "restbench", Partitions: 2, Blob: m.store,
			CacheBytes:   1,
			Table:        core.Config{MaxSegmentRows: segRows, EagerHydration: m.eager},
			ChunkRecords: 256, SnapshotEvery: 1 << 30, // snapshots taken explicitly
		}
		c, err := cluster.New(cfg)
		if err != nil {
			return nil, time.Time{}, err
		}
		if err := c.CreateTable("items", restoreSchema()); err != nil {
			c.Close()
			return nil, time.Time{}, err
		}
		batch := make([]types.Row, 0, rows)
		for i := 0; i < rows; i++ {
			batch = append(batch, types.Row{
				types.NewInt(int64(i)), types.NewInt(int64(i % 1000)),
				types.NewString(fmt.Sprintf("t%d", i%4)),
			})
		}
		if _, err := c.Insert("items", batch, core.InsertOptions{}); err != nil {
			c.Close()
			return nil, time.Time{}, err
		}
		if err := c.Flush("items"); err != nil {
			c.Close()
			return nil, time.Time{}, err
		}
		for pi := 0; pi < 2; pi++ {
			c.Master(pi).NoteAppend()
			c.Stager(pi).Step()
			if err := c.Stager(pi).Snapshot(); err != nil {
				c.Close()
				return nil, time.Time{}, err
			}
			tbl, _ := c.Master(pi).Table("items")
			m.loadedSegs += int64(len(tbl.Snapshot().Segs))
		}
		time.Sleep(2 * time.Millisecond) // snapshots strictly before the target
		return c, time.Now(), nil
	}

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	tagFilter := exec.NewLeaf(2, vector.Eq, types.NewString("t1"))

	runPITR := func(m *mode, target time.Time) error {
		m.store.started.Store(0)
		m.store.completed.Store(0)
		restored, err := cluster.PointInTimeRestore(cluster.Config{
			Name: "restbench", Partitions: 2, Blob: m.store,
			Table: core.Config{MaxSegmentRows: segRows, EagerHydration: m.eager},
		}, target)
		if err != nil {
			return err
		}
		defer restored.Close()
		start := time.Now()
		if err := restored.RestoreTables(map[string]*types.Schema{"items": restoreSchema()}, target); err != nil {
			return err
		}
		m.restoreMs = ms(time.Since(start))
		m.payloadsAtReturn = m.store.completed.Load()

		// Metadata COUNT(*) answers from stubs with no payload fetch.
		views, err := restored.Views("items")
		if err != nil {
			return err
		}
		for _, v := range views {
			m.totalCount += exec.NewScan(v, nil).Count()
		}

		// First analytic query on the cold restore: demand hydration, with
		// readahead prefetching the rest of each view behind it.
		qStart := time.Now()
		got, err := exec.CollectRows(context.Background(), views, tagFilter, -1, 0, nil)
		if err != nil {
			return err
		}
		m.firstQueryMs = ms(time.Since(qStart))
		m.queryRows = int64(len(got))

		// Time until every segment is resident (readahead drains).
		for pi := 0; pi < 2; pi++ {
			tbl, err := restored.Master(pi).Table("items")
			if err != nil {
				return err
			}
			if err := tbl.WaitHydrated(context.Background()); err != nil {
				return err
			}
		}
		m.fullWarmMs = ms(time.Since(start))
		return nil
	}

	runWorkspace := func(m *mode, c *cluster.Cluster) error {
		m.store.started.Store(0)
		m.store.completed.Store(0)
		start := time.Now()
		ws, err := c.CreateWorkspace("analytics")
		if err != nil {
			return err
		}
		m.wsCreateMs = ms(time.Since(start))
		m.wsPayloadsDoneAtRet = m.store.completed.Load()
		m.wsPayloadsAtRet = m.store.started.Load()
		if err := c.WaitCaughtUp(ws, 30*time.Second); err != nil {
			return err
		}
		views, err := ws.Views("items")
		if err != nil {
			return err
		}
		qStart := time.Now()
		for _, v := range views {
			n := exec.NewScan(v, exec.CloneNode(tagFilter)).Count()
			m.wsCount += n
		}
		m.wsQueryMs = ms(time.Since(qStart))
		return nil
	}

	modes := []*mode{
		{name: "eager (ablation)", eager: true},
		{name: "lazy", eager: false},
	}
	for _, m := range modes {
		c, target, err := build(m)
		if err != nil {
			return fmt.Errorf("%s: build: %w", m.name, err)
		}
		if err := runPITR(m, target); err != nil {
			c.Close()
			return fmt.Errorf("%s: pitr: %w", m.name, err)
		}
		if err := runWorkspace(m, c); err != nil {
			c.Close()
			return fmt.Errorf("%s: workspace: %w", m.name, err)
		}
		c.Close()
		fmt.Printf("%-18s restore %8.2fms (%2d/%2d payloads fetched at return)  first query %8.2fms  fully warm %8.2fms\n",
			m.name, m.restoreMs, m.payloadsAtReturn, m.loadedSegs, m.firstQueryMs, m.fullWarmMs)
		fmt.Printf("%-18s ws create %6.2fms (%d payload fetches completed at return)  ws query %8.2fms\n",
			"", m.wsCreateMs, m.wsPayloadsDoneAtRet, m.wsQueryMs)
	}
	eager, lazy := modes[0], modes[1]

	speedup := eager.restoreMs / lazy.restoreMs
	equivalent := eager.totalCount == lazy.totalCount &&
		eager.queryRows == lazy.queryRows &&
		eager.wsCount == lazy.wsCount &&
		lazy.totalCount == int64(rows)
	lazyReturnsCold := lazy.payloadsAtReturn < lazy.loadedSegs
	wsBeforeFirstFetch := lazy.wsPayloadsDoneAtRet == 0
	fmt.Printf("cold PITR restore speedup (lazy vs eager): %.1fx; equivalence %v\n", speedup, equivalent)

	if !equivalent {
		return fmt.Errorf("equivalence failed: eager %d/%d/%d rows vs lazy %d/%d/%d (want total %d)",
			eager.totalCount, eager.queryRows, eager.wsCount,
			lazy.totalCount, lazy.queryRows, lazy.wsCount, rows)
	}
	if speedup < minSpeedup {
		return fmt.Errorf("lazy restore speedup %.2fx < required %.1fx (eager %.2fms, lazy %.2fms)",
			speedup, minSpeedup, eager.restoreMs, lazy.restoreMs)
	}
	if !lazyReturnsCold {
		return fmt.Errorf("lazy restore fetched all %d payloads before returning", lazy.loadedSegs)
	}
	if !wsBeforeFirstFetch {
		return fmt.Errorf("lazy workspace create returned after %d completed payload fetches", lazy.wsPayloadsDoneAtRet)
	}

	if out == "" {
		fmt.Println("smoke mode: harness OK, JSON artifact not written")
		return nil
	}
	modeJSON := func(m *mode) map[string]any {
		return map[string]any{
			"name":                         m.name,
			"segments":                     m.loadedSegs,
			"restore_ms":                   m.restoreMs,
			"payload_fetches_at_return":    m.payloadsAtReturn,
			"first_query_ms":               m.firstQueryMs,
			"fully_warm_ms":                m.fullWarmMs,
			"workspace_create_ms":          m.wsCreateMs,
			"ws_payload_fetches_at_return": m.wsPayloadsDoneAtRet,
			"workspace_first_query_ms":     m.wsQueryMs,
		}
	}
	payload := map[string]any{
		"benchmark":       "lazy segment hydration: O(manifest) restore + demand-fetch scans (PR 9)",
		"command":         "s2bench -exp restore",
		"rows":            rows,
		"segment_rows":    segRows,
		"blob_latency_ms": ms(latency),
		"benchmarks":      []map[string]any{modeJSON(eager), modeJSON(lazy)},
		"restore_speedup": speedup,
		"acceptance": map[string]any{
			"lazy_restore_speedup_over_4x":             speedup >= 4,
			"lazy_restore_returns_before_all_payloads": lazyReturnsCold,
			"workspace_create_before_first_fetch":      wsBeforeFirstFetch,
			"lazy_eager_equivalent":                    equivalent,
		},
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
