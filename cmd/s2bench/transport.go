package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"s2db"
)

// transportBench measures the cluster transport boundary (PR 8): sync-
// replicated commit latency over the in-memory channel transport versus
// the length-prefixed TCP wire codec, the same workload with every chaos
// fault class enabled, and partition-recovery time for the reconnect-
// with-resume protocol. Results land in BENCH_PR8.json. smoke caps the
// measurement window and skips the JSON artifact.
func transportBench(out string, duration time.Duration, smoke bool) error {
	if smoke && duration > 150*time.Millisecond {
		duration = 150 * time.Millisecond
	}
	type result struct {
		Name          string  `json:"name"`
		Transport     string  `json:"transport"`
		SyncReplicas  int     `json:"sync_replicas"`
		Chaos         bool    `json:"chaos"`
		Commits       int64   `json:"commits"`
		CommitsPerSec float64 `json:"commits_per_sec"`
		P50Us         float64 `json:"commit_p50_us"`
		P99Us         float64 `json:"commit_p99_us"`
		Reconnects    int     `json:"link_reconnects"`
		Dropped       int64   `json:"chaos_dropped"`
		Duplicated    int64   `json:"chaos_duplicated"`
		Reordered     int64   `json:"chaos_reordered"`
	}

	schema := s2db.NewSchema(
		s2db.Column{Name: "id", Type: s2db.Int64T},
		s2db.Column{Name: "seq", Type: s2db.Int64T},
	)
	schema.UniqueKey = []int{0}
	schema.ShardKey = []int{0}

	measure := func(name, transport string, chaos *s2db.ChaosOptions) (result, error) {
		res := result{Name: name, Transport: transport, SyncReplicas: 1, Chaos: chaos != nil}
		cfg := s2db.Config{
			Partitions: 1, SyncReplicas: 1,
			Transport: transport,
			Chaos:     chaos,
		}
		if chaos != nil {
			// Lost frames must heal fast enough that faults cost stalls,
			// not the whole measurement window.
			cfg.LinkStallTimeout = 10 * time.Millisecond
		}
		db, err := s2db.Open(cfg)
		if err != nil {
			return res, err
		}
		defer db.Close()
		if err := db.CreateTable("commits", schema); err != nil {
			return res, err
		}
		var lats []time.Duration
		deadline := time.Now().Add(duration)
		start := time.Now()
		for i := 0; time.Now().Before(deadline); i++ {
			t0 := time.Now()
			if err := db.Insert("commits", s2db.Row{s2db.Int(int64(i)), s2db.Int(int64(i))}); err != nil {
				return res, fmt.Errorf("%s commit %d: %w", name, i, err)
			}
			lats = append(lats, time.Since(t0))
		}
		elapsed := time.Since(start)
		if errs := db.Cluster().LinkErrors(); len(errs) != 0 {
			return res, fmt.Errorf("%s finished with link errors: %v", name, errs)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) float64 {
			if len(lats) == 0 {
				return 0
			}
			i := int(p * float64(len(lats)-1))
			return float64(lats[i]) / float64(time.Microsecond)
		}
		res.Commits = int64(len(lats))
		res.CommitsPerSec = float64(len(lats)) / elapsed.Seconds()
		res.P50Us = pct(0.50)
		res.P99Us = pct(0.99)
		res.Reconnects = db.Cluster().LinkReconnects()
		if ct := db.ChaosTransport(); ct != nil {
			st := ct.Stats()
			res.Dropped, res.Duplicated, res.Reordered = st.Dropped, st.Duplicated, st.Reordered
		}
		return res, nil
	}

	fmt.Println("== transport: sync-replicated commit latency (PR 8) ==")
	mem, err := measure("memory", s2db.TransportMemory, nil)
	if err != nil {
		return err
	}
	tcp, err := measure("tcp", s2db.TransportTCP, nil)
	if err != nil {
		return err
	}
	chaos, err := measure("tcp-chaos", s2db.TransportTCP, &s2db.ChaosOptions{
		Seed: 1, Drop: 0.02, Duplicate: 0.02, Reorder: 0.02,
		DelayMax: 100 * time.Microsecond,
	})
	if err != nil {
		return err
	}
	results := []result{mem, tcp, chaos}
	for _, r := range results {
		fmt.Printf("  %-10s %8d commits  %10.0f/s  p50 %7.1fus  p99 %7.1fus  reconnects %d\n",
			r.Name, r.Commits, r.CommitsPerSec, r.P50Us, r.P99Us, r.Reconnects)
	}
	overhead := 0.0
	if mem.P50Us > 0 {
		overhead = tcp.P50Us / mem.P50Us
	}
	fmt.Printf("  tcp/memory p50 overhead: %.2fx\n", overhead)

	// Partition recovery: cut the transport under a blocked sync commit,
	// heal it, and time how long reconnect-with-resume takes to deliver
	// durability. Pure partition (no random faults) keeps the number a
	// clean protocol measurement.
	recover := func() (recoveryMs float64, reconnects int, err error) {
		db, err := s2db.Open(s2db.Config{
			Partitions: 1, SyncReplicas: 1,
			Transport:        s2db.TransportTCP,
			Chaos:            &s2db.ChaosOptions{Seed: 2},
			LinkStallTimeout: 10 * time.Millisecond,
		})
		if err != nil {
			return 0, 0, err
		}
		defer db.Close()
		if err := db.CreateTable("commits", schema); err != nil {
			return 0, 0, err
		}
		for i := 0; i < 10; i++ {
			if err := db.Insert("commits", s2db.Row{s2db.Int(int64(i)), s2db.Int(0)}); err != nil {
				return 0, 0, err
			}
		}
		ct := db.ChaosTransport()
		ct.SetPartitioned(true)
		done := make(chan error, 1)
		go func() {
			err := db.Insert("commits", s2db.Row{s2db.Int(1000), s2db.Int(0)})
			done <- err
		}()
		time.Sleep(50 * time.Millisecond) // commit blocks on the cut link
		healed := time.Now()
		ct.SetPartitioned(false)
		if err := <-done; err != nil {
			return 0, 0, fmt.Errorf("commit after heal: %w", err)
		}
		if errs := db.Cluster().LinkErrors(); len(errs) != 0 {
			return 0, 0, fmt.Errorf("link errors after heal: %v", errs)
		}
		return float64(time.Since(healed)) / float64(time.Millisecond), db.Cluster().LinkReconnects(), nil
	}
	recoveryMs, reconnects, err := recover()
	if err != nil {
		return err
	}
	fmt.Printf("  partition recovery: %.1fms to durable after heal (%d reconnects)\n", recoveryMs, reconnects)

	acceptance := map[string]bool{
		"tcp_converges_without_link_errors":   tcp.Commits > 0,
		"chaos_faults_injected_and_converged": chaos.Dropped+chaos.Duplicated+chaos.Reordered > 0 && chaos.Commits > 0,
		"partition_heals_by_reconnect":        reconnects >= 1,
	}
	for k, ok := range acceptance {
		if !ok {
			return fmt.Errorf("acceptance %q failed", k)
		}
	}
	if out == "" {
		fmt.Println("  smoke: skipping JSON artifact")
		return nil
	}
	doc := map[string]any{
		"benchmark":            "cluster transport: wire-codec page replication with chaos (PR 8)",
		"generated":            time.Now().UTC().Format(time.RFC3339),
		"results":              results,
		"tcp_over_memory_p50":  overhead,
		"partition_recovery":   map[string]any{"recovery_ms": recoveryMs, "reconnects": reconnects, "partition_window_ms": 50},
		"acceptance":           acceptance,
		"duration_per_variant": duration.String(),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", out)
	return nil
}
