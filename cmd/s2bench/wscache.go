package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"s2db"
)

// wscacheBench measures per-workspace vector-cache isolation (PR 5): the
// primary runs a small zone-mapped hot query while an adversarial analytic
// workspace churns the cache with full-table sweeps whose decoded working
// set exceeds the whole cache budget. Three configurations:
//
//   - baseline: no workspace attached — the primary's hot set stays
//     resident and every sampled query is warm;
//   - shared: SharedVectorCache=true (the pre-partitioning process-wide
//     LRU) — each adversary sweep evicts the primary's hot set, so sampled
//     queries keep re-decoding;
//   - partitioned: the default two-tier group — the adversary only churns
//     its own hot tier and the shared backing tier, and the primary's p99
//     stays near baseline.
//
// Methodology: churn is interleaved, not concurrent — every sampled
// primary query is preceded by one complete (unmeasured) adversary sweep,
// so the numbers isolate cache pollution rather than CPU contention from a
// sweep running at the same instant, which no cache policy could fix. All
// three environments are open simultaneously and sampled round-robin, so
// ambient machine noise (GC, neighbors, frequency shifts) lands on every
// mode equally instead of biasing whichever run it happened during.
//
// Results land in BENCH_PR5.json. smoke shrinks the table and sample count
// and skips the JSON artifact.
func wscacheBench(out string, smoke bool) error {
	const cacheBytes = 2 << 20
	rows, samples, warmups := 120_000, 150, 10
	if smoke {
		rows, samples, warmups = 8_000, 10, 2
	}

	type result struct {
		Name            string  `json:"name"`
		Samples         int     `json:"samples"`
		P50Ms           float64 `json:"primary_p50_ms"`
		P99Ms           float64 `json:"primary_p99_ms"`
		MaxMs           float64 `json:"primary_max_ms"`
		AdversarySweeps int     `json:"adversary_sweeps"`
		PrimaryDecodes  int64   `json:"primary_tier_misses"`
		PrimaryHits     int64   `json:"primary_tier_hits"`
		SharedTierHits  int64   `json:"shared_tier_hits"`
		WorkspaceBytes  int64   `json:"workspace_tier_bytes"`
	}

	type env struct {
		name   string
		db     *s2db.DB
		sweep  func() error
		hot    func() error
		durs   []time.Duration
		sweeps int
	}

	setup := func(name string, withAdversary, sharedCache bool) (*env, error) {
		e := &env{name: name}
		db, err := s2db.Open(s2db.Config{
			Partitions:        4,
			VectorCacheBytes:  cacheBytes,
			SharedVectorCache: sharedCache,
			MaxSegmentRows:    4096,
		})
		if err != nil {
			return nil, err
		}
		e.db = db
		schema := s2db.NewSchema(
			s2db.Column{Name: "id", Type: s2db.Int64T},
			s2db.Column{Name: "kind", Type: s2db.StringT},
			s2db.Column{Name: "amount", Type: s2db.Int64T},
			s2db.Column{Name: "score", Type: s2db.Float64T},
		)
		// Sort by id so zone maps cluster the primary's hot range into a few
		// segments per partition; shard by id for even partition spread.
		schema.SortKey = 0
		schema.ShardKey = []int{0}
		if err := db.CreateTable("events", schema); err != nil {
			return e, err
		}
		batch := make([]s2db.Row, 0, rows)
		for i := 0; i < rows; i++ {
			batch = append(batch, s2db.Row{
				s2db.Int(int64(i)),
				s2db.Str(fmt.Sprintf("kind-%02d", i%17)),
				s2db.Int(int64(i % 1000)),
				s2db.Float(float64(i) * 0.5),
			})
		}
		if err := db.BulkLoad("events", batch); err != nil {
			return e, err
		}

		// The primary's operational query: a zone-mapped range over ~1/8 of
		// the table, touching the id, kind and amount vectors of the hot
		// segments. The string column makes a cache miss expensive (string
		// decode allocates per value), the way real pollution hurts.
		e.hot = func() error {
			_, err := db.Table("events").
				Where(s2db.LtName("id", s2db.Int(int64(rows/8)))).
				GroupByNames("kind").
				Agg(s2db.CountAll(), s2db.SumName("amount")).
				Rows()
			return err
		}

		// The adversary: a full-table sweep on a read-only workspace
		// decoding every column, a working set larger than the whole cache
		// budget. Without an adversary the sweep is a no-op.
		e.sweep = func() error { return nil }
		if withAdversary {
			ws, err := db.CreateWorkspace("analytics")
			if err != nil {
				return e, err
			}
			if err := ws.WaitCaughtUp(30 * time.Second); err != nil {
				return e, err
			}
			e.sweep = func() error {
				if _, err := db.Table("events").OnWorkspace(ws).
					GroupByNames("kind").
					Agg(s2db.CountAll(), s2db.SumName("amount"), s2db.AvgName("score")).
					Rows(); err != nil {
					return fmt.Errorf("%s adversary sweep: %w", name, err)
				}
				e.sweeps++
				return nil
			}
		}
		return e, nil
	}

	envs := make([]*env, 0, 3)
	defer func() {
		for _, e := range envs {
			if e.db != nil {
				e.db.Close()
			}
		}
	}()
	for _, c := range []struct {
		name          string
		withAdversary bool
		sharedCache   bool
	}{
		{"primary/no-workspace", false, false},
		{"primary/churn-shared-cache", true, true},
		{"primary/churn-partitioned", true, false},
	} {
		e, err := setup(c.name, c.withAdversary, c.sharedCache)
		if e != nil {
			envs = append(envs, e)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
	}

	// Let post-load background work (flush, staging) drain and clear the
	// load's allocation debris before timing anything.
	time.Sleep(500 * time.Millisecond)
	runtime.GC()

	// Busy-spin briefly before each timed query so it starts from the same
	// CPU frequency state whether a decode-heavy sweep or nothing preceded
	// it.
	warmCPU := func() {
		for end := time.Now().Add(5 * time.Millisecond); time.Now().Before(end); {
		}
	}

	for i := 0; i < warmups+samples; i++ {
		for _, e := range envs {
			if err := e.sweep(); err != nil {
				return err
			}
			warmCPU()
			start := time.Now()
			if err := e.hot(); err != nil {
				return fmt.Errorf("%s hot query: %w", e.name, err)
			}
			if i >= warmups {
				e.durs = append(e.durs, time.Since(start))
			}
		}
	}

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	finish := func(e *env) result {
		sort.Slice(e.durs, func(i, j int) bool { return e.durs[i] < e.durs[j] })
		res := result{
			Name:            e.name,
			Samples:         len(e.durs),
			P50Ms:           ms(e.durs[len(e.durs)/2]),
			P99Ms:           ms(e.durs[int(float64(len(e.durs)-1)*0.99)]),
			MaxMs:           ms(e.durs[len(e.durs)-1]),
			AdversarySweeps: e.sweeps,
		}
		stats := e.db.VectorCacheStats()
		res.PrimaryDecodes = stats.Primary.Misses
		res.PrimaryHits = stats.Primary.Hits
		res.SharedTierHits = stats.Shared.Hits
		if ws, ok := stats.Workspaces["analytics"]; ok {
			res.WorkspaceBytes = ws.Bytes
		}
		fmt.Printf("%-32s p50 %7.3fms  p99 %7.3fms  max %7.3fms  (%d samples, %d sweeps, primary hits/misses %d/%d)\n",
			e.name, res.P50Ms, res.P99Ms, res.MaxMs, res.Samples, e.sweeps, res.PrimaryHits, res.PrimaryDecodes)
		return res
	}
	baseline := finish(envs[0])
	shared := finish(envs[1])
	partitioned := finish(envs[2])

	ratioPart := partitioned.P99Ms / baseline.P99Ms
	ratioShared := shared.P99Ms / baseline.P99Ms
	payload := map[string]any{
		"benchmark":   "per-workspace vector-cache partitioning (PR 5)",
		"command":     "s2bench -exp wscache",
		"cache_bytes": cacheBytes,
		"rows":        rows,
		"benchmarks":  []result{baseline, shared, partitioned},
		"p99_ratio_vs_baseline": map[string]float64{
			"shared_cache": ratioShared,
			"partitioned":  ratioPart,
		},
		"acceptance": map[string]any{
			"partitioned_p99_within_1_5x_of_baseline": ratioPart <= 1.5,
			"shared_cache_degrades_more":              ratioShared > ratioPart,
		},
	}
	fmt.Printf("p99 vs baseline: partitioned %.2fx, shared cache %.2fx\n", ratioPart, ratioShared)

	if smoke {
		if baseline.Samples == 0 || shared.AdversarySweeps == 0 || partitioned.AdversarySweeps == 0 {
			return fmt.Errorf("smoke: a stage produced no data (%d samples, %d/%d sweeps)",
				baseline.Samples, shared.AdversarySweeps, partitioned.AdversarySweeps)
		}
	}
	if out == "" {
		fmt.Println("smoke mode: harness OK, JSON artifact not written")
		return nil
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
