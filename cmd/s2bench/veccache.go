package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"s2db"
)

// veccacheBench measures the decoded-vector cache (PR 2): cold-vs-warm
// scan and fan-out aggregate queries, reporting ns/op, allocs/op and the
// cache counters, and writes the results as JSON (BENCH_PR2.json). Cold
// runs disable the cache (VectorCacheBytes < 0); warm runs use the default
// cache primed by one unmeasured query. smoke shrinks the table and skips
// the JSON artifact.
func veccacheBench(out string, smoke bool) error {
	type result struct {
		Name         string  `json:"name"`
		NsPerOp      float64 `json:"ns_per_op"`
		BytesPerOp   int64   `json:"bytes_per_op"`
		AllocsPerOp  int64   `json:"allocs_per_op"`
		VecDecodes   int64   `json:"vec_decodes_last_run"`
		CacheHits    int64   `json:"cache_hits_last_run"`
		CacheMisses  int64   `json:"cache_misses_last_run"`
		CacheHitRate float64 `json:"cache_hit_rate"`
	}
	var results []result

	open := func(vectorCacheBytes int) (*s2db.DB, error) {
		db, err := s2db.Open(s2db.Config{
			Partitions:       8,
			VectorCacheBytes: vectorCacheBytes,
			MaxSegmentRows:   4096,
		})
		if err != nil {
			return nil, err
		}
		schema := s2db.NewSchema(
			s2db.Column{Name: "id", Type: s2db.Int64T},
			s2db.Column{Name: "kind", Type: s2db.StringT},
			s2db.Column{Name: "amount", Type: s2db.Int64T},
			s2db.Column{Name: "price", Type: s2db.Float64T},
		)
		if err := db.CreateTable("events", schema); err != nil {
			db.Close()
			return nil, err
		}
		rows := 50_000
		if smoke {
			rows = 3_000
		}
		batch := make([]s2db.Row, 0, rows)
		for i := 0; i < rows; i++ {
			batch = append(batch, s2db.Row{
				s2db.Int(int64(i)),
				s2db.Str(fmt.Sprintf("k%d", i%7)),
				s2db.Int(int64(i % 1000)),
				s2db.Float(float64(i) * 0.25),
			})
		}
		if err := db.BulkLoad("events", batch); err != nil {
			db.Close()
			return nil, err
		}
		return db, nil
	}

	query := func(db *s2db.DB, parallelism int) *s2db.Query {
		return db.Table("events").
			Where(s2db.GtName("amount", s2db.Int(100))).
			GroupByNames("kind").
			Agg(s2db.CountAll(), s2db.SumName("amount")).
			Parallelism(parallelism)
	}

	measure := func(name string, vectorCacheBytes, parallelism int, warm bool) error {
		db, err := open(vectorCacheBytes)
		if err != nil {
			return err
		}
		defer db.Close()
		q := query(db, parallelism)
		if warm {
			if _, err := q.Rows(); err != nil {
				return err
			}
		}
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := q.Rows(); err != nil {
					runErr = err
					return
				}
			}
		})
		if runErr != nil {
			return runErr
		}
		st := q.Stats()
		results = append(results, result{
			Name:         name,
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:   r.AllocedBytesPerOp(),
			AllocsPerOp:  r.AllocsPerOp(),
			VecDecodes:   st.VecDecodes,
			CacheHits:    st.VecCacheHits,
			CacheMisses:  st.VecCacheMisses,
			CacheHitRate: db.VectorCacheStats().HitRate(),
		})
		fmt.Printf("%-24s %12.0f ns/op %12d B/op %8d allocs/op  decodes=%d hits=%d\n",
			name, results[len(results)-1].NsPerOp, r.AllocedBytesPerOp(), r.AllocsPerOp(),
			st.VecDecodes, st.VecCacheHits)
		return nil
	}

	// Cold: cache disabled, every run decodes privately. Warm: shared cache
	// primed once; measured runs should decode nothing.
	for _, c := range []struct {
		name        string
		cacheBytes  int
		parallelism int
		warm        bool
	}{
		{"scan/cold", -1, 1, false},
		{"scan/warm", 0, 1, true},
		{"fanout/cold", -1, 0, false},
		{"fanout/warm", 0, 0, true},
	} {
		if err := measure(c.name, c.cacheBytes, c.parallelism, c.warm); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
	}

	byName := func(name string) result {
		for _, r := range results {
			if r.Name == name {
				return r
			}
		}
		return result{}
	}
	cold, warmR := byName("scan/cold"), byName("scan/warm")
	acceptance := map[string]any{
		"warm_zero_decodes": warmR.VecDecodes == 0,
		"warm_bytes_reduction_vs_cold": 1 - float64(warmR.BytesPerOp)/
			float64(max64(cold.BytesPerOp, 1)),
	}
	payload := map[string]any{
		"benchmark":  "decoded-vector cache (PR 2)",
		"command":    "s2bench -exp veccache",
		"benchmarks": results,
		"acceptance": acceptance,
	}
	if smoke {
		if warmR.VecDecodes != 0 {
			return fmt.Errorf("smoke: warm run decoded %d vectors, want 0", warmR.VecDecodes)
		}
	}
	if out == "" {
		fmt.Println("smoke mode: harness OK, JSON artifact not written")
		return nil
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
