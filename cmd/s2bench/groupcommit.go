package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"s2db"
)

// groupCommitBench measures page-based group commit (PR 3): concurrent
// writers committing through 2 sync replicas behind a 1ms simulated link,
// per-record pages (the seed behavior) versus group-commit pages, plus a
// micro-benchmark of the durable-watermark recompute before/after the
// sorted-ack rewrite. Results land in BENCH_PR3.json. smoke caps the
// measurement window and skips the JSON artifact.
func groupCommitBench(out string, duration time.Duration, smoke bool) error {
	if smoke && duration > 150*time.Millisecond {
		duration = 150 * time.Millisecond
	}
	type result struct {
		Name             string  `json:"name"`
		Writers          int     `json:"writers"`
		SyncReplicas     int     `json:"sync_replicas"`
		ReplicationLatMs float64 `json:"replication_latency_ms"`
		GroupCommitUs    float64 `json:"group_commit_interval_us"`
		LogPageBytes     int     `json:"log_page_bytes"`
		Commits          int64   `json:"commits"`
		CommitsPerSec    float64 `json:"commits_per_sec"`
		PagesSealed      int     `json:"pages_sealed"`
		RecordsPerPage   float64 `json:"records_per_page"`
		MaxLagRecords    int     `json:"max_lag_records"`
		MaxLagPages      int     `json:"max_lag_pages"`
		MaxLagBytes      int     `json:"max_lag_bytes"`
	}
	const writers = 8
	const latency = time.Millisecond

	measure := func(name string, interval time.Duration, pageBytes int) (result, error) {
		res := result{
			Name: name, Writers: writers, SyncReplicas: 2,
			ReplicationLatMs: float64(latency) / float64(time.Millisecond),
			GroupCommitUs:    float64(interval) / float64(time.Microsecond),
			LogPageBytes:     pageBytes,
		}
		db, err := s2db.Open(s2db.Config{
			Partitions: 1, SyncReplicas: 2,
			ReplicationLatency:  latency,
			GroupCommitInterval: interval,
			LogPageBytes:        pageBytes,
		})
		if err != nil {
			return res, err
		}
		defer db.Close()
		schema := s2db.NewSchema(
			s2db.Column{Name: "id", Type: s2db.Int64T},
			s2db.Column{Name: "seq", Type: s2db.Int64T},
		)
		schema.UniqueKey = []int{0}
		schema.ShardKey = []int{0}
		if err := db.CreateTable("commits", schema); err != nil {
			return res, err
		}
		// Sample replication lag while the writers run: group commit must
		// keep the page/byte backlog bounded, and the detail metric is how
		// an operator would watch it.
		stop := make(chan struct{})
		var monWg sync.WaitGroup
		monWg.Add(1)
		go func() {
			defer monWg.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(2 * time.Millisecond):
				}
				recs, pages, bytes := db.Cluster().ReplicationLagDetail()
				if recs > res.MaxLagRecords {
					res.MaxLagRecords = recs
				}
				if pages > res.MaxLagPages {
					res.MaxLagPages = pages
				}
				if bytes > res.MaxLagBytes {
					res.MaxLagBytes = bytes
				}
			}
		}()
		var commits int64
		errCh := make(chan error, writers)
		deadline := time.Now().Add(duration)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for seq := 0; time.Now().Before(deadline); seq++ {
					id := int64(w)<<32 | int64(seq)
					if err := db.Insert("commits", s2db.Row{s2db.Int(id), s2db.Int(int64(seq))}); err != nil {
						errCh <- err
						return
					}
					atomic.AddInt64(&commits, 1)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(stop)
		monWg.Wait()
		close(errCh)
		for err := range errCh {
			return res, err
		}
		log := db.Cluster().Master(0).Log()
		res.Commits = commits
		res.CommitsPerSec = float64(commits) / elapsed.Seconds()
		res.PagesSealed = int(log.PagesSealed())
		if res.PagesSealed > 0 {
			res.RecordsPerPage = float64(log.Head()) / float64(res.PagesSealed)
		}
		fmt.Printf("%-28s %9.0f commits/s  %6d pages  %5.1f recs/page  lag max %d recs / %d pages / %d bytes\n",
			name, res.CommitsPerSec, res.PagesSealed, res.RecordsPerPage,
			res.MaxLagRecords, res.MaxLagPages, res.MaxLagBytes)
		return res, nil
	}

	perRecord, err := measure("commit/per-record", 0, 0)
	if err != nil {
		return err
	}
	grouped, err := measure("commit/group-500us", 500*time.Microsecond, 64<<10)
	if err != nil {
		return err
	}
	speedup := grouped.CommitsPerSec / perRecord.CommitsPerSec
	if smoke {
		if perRecord.Commits == 0 || grouped.Commits == 0 {
			return fmt.Errorf("smoke: a commit mode recorded zero commits")
		}
	}
	if out == "" {
		fmt.Println("smoke mode: harness OK, JSON artifact not written")
		return nil
	}

	seedNs, pagedNs := recomputeBench()
	fmt.Printf("recompute: per-record acks %.0f ns/record -> per-page acks %.0f ns/record\n", seedNs, pagedNs)

	payload := map[string]any{
		"benchmark":  "page-based group commit (PR 3)",
		"command":    "s2bench -exp groupcommit",
		"benchmarks": []result{perRecord, grouped},
		"recompute_durable": map[string]any{
			"seed_per_record_acks_ns_per_record": seedNs,
			"paged_coalesced_acks_ns_per_record": pagedNs,
			"speedup":                            seedNs / pagedNs,
		},
		"acceptance": map[string]any{
			"group_commit_speedup":       speedup,
			"group_commit_speedup_ge_2x": speedup >= 2,
			"lag_reported_in_pages":      grouped.MaxLagPages >= 0,
			"lag_reported_in_bytes":      grouped.MaxLagBytes >= 0,
		},
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("group commit speedup: %.2fx\nwrote %s\n", speedup, out)
	return nil
}

// seedDurability reimplements the seed's durable-watermark recompute: a
// fresh ack slice plus partial selection sort on every ack, and a channel
// closed and recreated on every advance whether or not anyone is waiting.
type seedDurability struct {
	mu         sync.Mutex
	acks       map[int]uint64
	minSyncers int
	durable    uint64
	durableCh  chan struct{}
}

func (s *seedDurability) ack(id int, lsn uint64) {
	s.mu.Lock()
	if lsn > s.acks[id] {
		s.acks[id] = lsn
	}
	acked := make([]uint64, 0, len(s.acks))
	for _, l := range s.acks {
		acked = append(acked, l)
	}
	if len(acked) >= s.minSyncers {
		for i := 0; i < s.minSyncers; i++ {
			for j := i + 1; j < len(acked); j++ {
				if acked[j] > acked[i] {
					acked[j], acked[i] = acked[i], acked[j]
				}
			}
		}
		if nd := acked[s.minSyncers-1]; nd > s.durable {
			s.durable = nd
			close(s.durableCh)
			s.durableCh = make(chan struct{})
		}
	}
	s.mu.Unlock()
}

// pagedDurability mirrors the rewritten recompute: ack-increase fast path,
// a reused scratch slice with sort.Slice, and channel churn gated on
// registered waiters.
type pagedDurability struct {
	mu         sync.Mutex
	acks       map[int]uint64
	scratch    []uint64
	minSyncers int
	durable    uint64
	waiters    int
	durableCh  chan struct{}
}

func (p *pagedDurability) ack(id int, lsn uint64) {
	p.mu.Lock()
	if lsn <= p.acks[id] {
		p.mu.Unlock()
		return
	}
	p.acks[id] = lsn
	acked := p.scratch[:0]
	for _, l := range p.acks {
		acked = append(acked, l)
	}
	p.scratch = acked
	if len(acked) >= p.minSyncers {
		sort.Slice(acked, func(i, j int) bool { return acked[i] > acked[j] })
		if nd := acked[p.minSyncers-1]; nd > p.durable {
			p.durable = nd
			if p.waiters > 0 {
				close(p.durableCh)
				p.durableCh = make(chan struct{})
			}
		}
	}
	p.mu.Unlock()
}

// recomputeBench measures the per-committed-record cost of the durable
// watermark machinery before and after the refactor, with 4 sync replicas
// and one registered commit waiter. Seed: every record draws one ack per
// replica, each ack re-running the selection-sort recompute and churning
// the broadcast channel. Paged: replicas ack once per sealed page (16
// records here), the recompute reuses its scratch slice, and the channel
// only churns for registered waiters.
func recomputeBench() (seedNs, pagedNs float64) {
	const replicas = 4
	const recordsPerPage = 16
	seed := &seedDurability{acks: map[int]uint64{}, minSyncers: replicas, durableCh: make(chan struct{})}
	rs := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := 1; r <= replicas; r++ {
				seed.ack(r, uint64(i+1))
			}
		}
	})
	paged := &pagedDurability{acks: map[int]uint64{}, minSyncers: replicas, waiters: 1, durableCh: make(chan struct{})}
	rp := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if (i+1)%recordsPerPage == 0 {
				for r := 1; r <= replicas; r++ {
					paged.ack(r, uint64(i+1))
				}
			}
		}
	})
	return float64(rs.T.Nanoseconds()) / float64(rs.N), float64(rp.T.Nanoseconds()) / float64(rp.N)
}
