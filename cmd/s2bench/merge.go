package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"s2db/internal/colstore"
	"s2db/internal/core"
	"s2db/internal/exec"
	"s2db/internal/txn"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// mergeBench measures the merge pipeline rebuild (PR 4) and writes
// BENCH_PR4.json:
//
//  1. merge throughput — the columnar k-way merge with parallel segment
//     builds vs. the legacy row-materializing resort;
//  2. foreground write p99 while a merge is in flight against a
//     latency-injected file store — install-only lock scope vs. the legacy
//     hold-structMu-for-everything scope;
//  3. decoded-vector cache invalidations caused by one merge step — the
//     cache-aware planner (prefers cold runs) vs. size-only selection.
//
// smoke shrinks the runs, cycles and injected latency to a seconds-scale
// harness check and skips the JSON artifact.
func mergeBench(out string, smoke bool) error {
	report := struct {
		Benchmark  string `json:"benchmark"`
		Throughput struct {
			Runs             int     `json:"input_runs"`
			Rows             int     `json:"live_rows"`
			ColumnarRowsPerS float64 `json:"columnar_rows_per_sec"`
			RowsortRowsPerS  float64 `json:"rowsort_rows_per_sec"`
			ColumnarMergeMs  float64 `json:"columnar_merge_ms"`
			RowsortMergeMs   float64 `json:"rowsort_merge_ms"`
			Speedup          float64 `json:"speedup"`
			ColumnarWorkers  int     `json:"columnar_merge_workers"`
		} `json:"merge_throughput"`
		Foreground struct {
			SaveLatencyMs float64 `json:"injected_save_latency_ms"`
			UnlockedP99Ms float64 `json:"p99_ms_install_only_lock"`
			LockedP99Ms   float64 `json:"p99_ms_lock_held_baseline"`
			UnlockedMaxMs float64 `json:"max_ms_install_only_lock"`
			LockedMaxMs   float64 `json:"max_ms_lock_held_baseline"`
			UnlockedN     int     `json:"samples_install_only_lock"`
			LockedN       int     `json:"samples_lock_held_baseline"`
		} `json:"foreground_write_during_merge"`
		CacheAware struct {
			TotalRuns          int   `json:"candidate_runs"`
			WarmRuns           int   `json:"warmed_runs"`
			InvalidationsAware int64 `json:"invalidations_cache_aware"`
			InvalidationsSize  int64 `json:"invalidations_size_only"`
		} `json:"cache_aware_planning"`
		Acceptance map[string]bool `json:"acceptance"`
	}{Benchmark: "columnar k-way merge pipeline (PR 4)"}

	// --- 1. merge throughput: columnar+parallel vs row-resort ------------
	tpRuns, tpRowsPerRun, tpTrials := 12, 16384, 3
	if smoke {
		tpRuns, tpRowsPerRun, tpTrials = 4, 1024, 1
	}
	timeMerge := func(cfg core.Config) (rows int, best time.Duration, err error) {
		best = time.Duration(1<<62 - 1)
		for trial := 0; trial < tpTrials; trial++ {
			tbl, err := newMergeBenchTable(cfg, core.NewMemFiles(), false)
			if err != nil {
				return 0, 0, err
			}
			if err := fillRuns(tbl, tpRuns, tpRowsPerRun, 0); err != nil {
				return 0, 0, err
			}
			rows = tbl.Snapshot().NumRows()
			start := time.Now()
			if !tbl.Merge() {
				return 0, 0, fmt.Errorf("merge did not trigger (trial %d)", trial)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return rows, best, nil
	}
	colCfg := core.Config{MaxSegmentRows: tpRowsPerRun, MergeFanout: 4, MergeWorkers: 4}
	rowCfg := core.Config{MaxSegmentRows: tpRowsPerRun, MergeFanout: 4, MergeWorkers: 1,
		MergeRowSort: true, MergeHoldLock: true}
	rows, colDur, err := timeMerge(colCfg)
	if err != nil {
		return err
	}
	_, rowDur, err := timeMerge(rowCfg)
	if err != nil {
		return err
	}
	report.Throughput.Runs = tpRuns
	report.Throughput.Rows = rows
	report.Throughput.ColumnarWorkers = colCfg.MergeWorkers
	report.Throughput.ColumnarRowsPerS = float64(rows) / colDur.Seconds()
	report.Throughput.RowsortRowsPerS = float64(rows) / rowDur.Seconds()
	report.Throughput.ColumnarMergeMs = float64(colDur.Microseconds()) / 1000
	report.Throughput.RowsortMergeMs = float64(rowDur.Microseconds()) / 1000
	report.Throughput.Speedup = report.Throughput.ColumnarRowsPerS / report.Throughput.RowsortRowsPerS

	// --- 2. foreground write p99 during an in-flight merge ---------------
	saveLatency, fgCycles, fgRowsPerRun := 2*time.Millisecond, 6, 2048
	if smoke {
		saveLatency, fgCycles, fgRowsPerRun = 500*time.Microsecond, 2, 512
	}
	foreground := func(holdLock bool) (p99, max float64, n int, err error) {
		cfg := core.Config{MaxSegmentRows: fgRowsPerRun, MergeFanout: 4, MergeWorkers: 4}
		if holdLock {
			cfg.MergeRowSort = true
			cfg.MergeHoldLock = true
			cfg.MergeWorkers = 1
		}
		tbl, err := newMergeBenchTable(cfg, &slowFiles{inner: core.NewMemFiles(), delay: saveLatency}, true)
		if err != nil {
			return 0, 0, 0, err
		}
		nextID := 0
		var samples []time.Duration
		for cycle := 0; cycle < fgCycles; cycle++ {
			// Four fresh same-tier runs so every cycle triggers one merge.
			base := nextID
			if err := fillRuns(tbl, 4, fgRowsPerRun, nextID); err != nil {
				return 0, 0, 0, err
			}
			nextID += 4 * fgRowsPerRun
			done := make(chan struct{})
			go func() {
				tbl.Merge()
				close(done)
			}()
			probe := 0
			for {
				select {
				case <-done:
				default:
					// Foreground point update against a row the in-flight
					// merge owns: UpdateWhere serializes on structMu, so this
					// is exactly the latency the lock scope decides.
					id := int64(base + probe%100)
					probe++
					start := time.Now()
					if _, err := tbl.UpdateWhere(core.Eq(0, types.NewInt(id)), func(r types.Row) types.Row {
						r[1] = types.NewInt(r[1].I + 1)
						return r
					}); err != nil {
						return 0, 0, 0, err
					}
					// Only count probes that started while the merge was live.
					samples = append(samples, time.Since(start))
					continue
				}
				break
			}
		}
		if len(samples) == 0 {
			return 0, 0, 0, fmt.Errorf("no foreground samples collected")
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		p99d := samples[int(float64(len(samples)-1)*0.99)]
		return float64(p99d.Microseconds()) / 1000,
			float64(samples[len(samples)-1].Microseconds()) / 1000,
			len(samples), nil
	}
	up99, umax, un, err := foreground(false)
	if err != nil {
		return err
	}
	lp99, lmax, ln, err := foreground(true)
	if err != nil {
		return err
	}
	report.Foreground.SaveLatencyMs = float64(saveLatency.Microseconds()) / 1000
	report.Foreground.UnlockedP99Ms, report.Foreground.UnlockedMaxMs, report.Foreground.UnlockedN = up99, umax, un
	report.Foreground.LockedP99Ms, report.Foreground.LockedMaxMs, report.Foreground.LockedN = lp99, lmax, ln

	// --- 3. cache-aware planning vs size-only --------------------------
	caRowsPerRun := 4096
	if smoke {
		caRowsPerRun = 512
	}
	invalidations := func(cacheAware bool) (int64, error) {
		vc := exec.NewVecCache(64 << 20)
		cfg := core.Config{MaxSegmentRows: caRowsPerRun, MergeFanout: 4}
		if cacheAware {
			cfg.DecodedCache = vc
		} else {
			// The wrapper hides the residency/peek interfaces, so the planner
			// degrades to size-only selection while invalidation still works.
			cfg.DecodedCache = sizeOnlyCache{c: vc}
		}
		tbl, err := newMergeBenchTable(cfg, core.NewMemFiles(), false)
		if err != nil {
			return 0, err
		}
		if err := fillRuns(tbl, 6, caRowsPerRun, 0); err != nil {
			return 0, err
		}
		// Warm two runs: decode all columns and add extra hits so their heat
		// is unambiguous.
		view := tbl.Snapshot()
		warmed := 0
		for _, m := range view.Segs {
			if m.Run%3 != 0 { // two of the six runs
				continue
			}
			warmed++
			for pass := 0; pass < 3; pass++ {
				vc.Ints(m, 0, nil)
				vc.Ints(m, 1, nil)
				vc.Strs(m, 2, nil)
			}
		}
		if warmed != 2 {
			return 0, fmt.Errorf("warmed %d runs, want 2", warmed)
		}
		before := vc.Stats().Invalidations
		if !tbl.Merge() {
			return 0, fmt.Errorf("merge did not trigger")
		}
		return vc.Stats().Invalidations - before, nil
	}
	invAware, err := invalidations(true)
	if err != nil {
		return err
	}
	invSize, err := invalidations(false)
	if err != nil {
		return err
	}
	report.CacheAware.TotalRuns = 6
	report.CacheAware.WarmRuns = 2
	report.CacheAware.InvalidationsAware = invAware
	report.CacheAware.InvalidationsSize = invSize

	report.Acceptance = map[string]bool{
		"merge_throughput_2x_or_better":     report.Throughput.Speedup >= 2,
		"foreground_p99_drops_vs_lock_held": up99 < lp99,
		"cache_aware_fewer_invalidations":   invAware < invSize,
	}

	if smoke {
		// At smoke scale the timing comparisons are noise; only check that
		// every stage of the harness still runs end to end.
		if rows == 0 || un == 0 || ln == 0 {
			return fmt.Errorf("smoke: a harness stage produced no data (rows=%d fg=%d/%d)", rows, un, ln)
		}
	}
	if out == "" {
		fmt.Println("smoke mode: harness OK, JSON artifact not written")
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("== merge pipeline (PR 4) ==\n")
	fmt.Printf("throughput: columnar %.0f rows/s vs rowsort %.0f rows/s (%.2fx, %d rows, %d runs)\n",
		report.Throughput.ColumnarRowsPerS, report.Throughput.RowsortRowsPerS,
		report.Throughput.Speedup, rows, tpRuns)
	fmt.Printf("foreground p99 during merge (+%.1fms/save): %.3fms install-only lock vs %.3fms lock-held (%d/%d samples)\n",
		report.Foreground.SaveLatencyMs, up99, lp99, un, ln)
	fmt.Printf("veccache invalidations per merge: %d cache-aware vs %d size-only\n", invAware, invSize)
	fmt.Printf("acceptance: %v\n", report.Acceptance)
	fmt.Printf("wrote %s\n", out)
	return nil
}

// newMergeBenchTable builds a raw single-partition table so the benchmark
// drives Flush/Merge directly. The throughput experiment runs without a
// unique key: maintaining the global unique index on install is the same
// cost on both merge paths and would only dilute the algorithmic
// comparison. The foreground experiment needs one for its point updates.
func newMergeBenchTable(cfg core.Config, files core.FileStore, uniqueKey bool) (*core.Table, error) {
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "val", Type: types.Int64},
		types.Column{Name: "tag", Type: types.String},
	)
	if uniqueKey {
		schema.UniqueKey = []int{0}
	}
	schema.SortKey = 0
	return core.NewTable("m", schema, cfg, core.NewCommitter(&txn.Oracle{}), wal.NewLog(), files)
}

// fillRuns creates `runs` sorted runs of rowsPerRun rows each whose key
// ranges fully interleave (run r holds base+r, base+r+runs, …), so a merge
// does real k-way interleaving rather than concatenation.
func fillRuns(tbl *core.Table, runs, rowsPerRun, base int) error {
	for r := 0; r < runs; r++ {
		for i := 0; i < rowsPerRun; i++ {
			id := int64(base + r + i*runs)
			row := types.Row{
				types.NewInt(id),
				types.NewInt(id % 997),
				types.NewString(fmt.Sprintf("t%d", id%13)),
			}
			if err := tbl.Insert(row); err != nil {
				return err
			}
		}
		// One flush per run; probe updates may park a few moved rows back in
		// the buffer between cycles, which the next flush picks up.
		if _, err := tbl.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// slowFiles injects object-store-like latency into SaveFile, the knob that
// makes the lock-scope difference visible at laptop scale.
type slowFiles struct {
	inner core.FileStore
	delay time.Duration
}

func (s *slowFiles) SaveFile(name string, data []byte) error {
	time.Sleep(s.delay)
	return s.inner.SaveFile(name, data)
}
func (s *slowFiles) LoadFile(name string) ([]byte, error) { return s.inner.LoadFile(name) }
func (s *slowFiles) RemoveFile(name string) error         { return s.inner.RemoveFile(name) }

// sizeOnlyCache forwards invalidations to a real VecCache but hides its
// residency and peek interfaces, reproducing the pre-PR planner behavior
// for the A/B comparison.
type sizeOnlyCache struct{ c *exec.VecCache }

func (s sizeOnlyCache) InvalidateSegment(seg *colstore.Segment) { s.c.InvalidateSegment(seg) }
