// Command s2bench regenerates the paper's evaluation tables and figures
// (§6) at simulator scale and prints them in the same layout:
//
//	s2bench -exp table1    # TPC-C throughput (Table 1)
//	s2bench -exp table2    # TPC-H geomean summary (Table 2)
//	s2bench -exp figure4   # TPC-H per-query runtimes (Figure 4)
//	s2bench -exp figure5   # TPC-C + TPC-H cross-engine summary (Figure 5)
//	s2bench -exp table3    # CH-BenCHmark mixed workload (Table 3)
//	s2bench -exp veccache  # decoded-vector cache cold/warm (BENCH_PR2.json)
//	s2bench -exp groupcommit # page-based group commit (BENCH_PR3.json)
//	s2bench -exp merge     # columnar k-way merge pipeline (BENCH_PR4.json)
//	s2bench -exp wscache   # per-workspace cache isolation (BENCH_PR5.json)
//	s2bench -exp sqlplan   # SQL plan cache vs parse vs builder (BENCH_PR6.json)
//	s2bench -exp kernels   # fused encoded-execution kernels ablation (BENCH_PR7.json)
//	s2bench -exp transport # in-memory vs TCP wire transport + chaos (BENCH_PR8.json)
//	s2bench -exp restore   # lazy segment hydration: O(manifest) restore (BENCH_PR9.json)
//	s2bench -exp qos       # multi-tenant QoS admission isolation (BENCH_PR10.json)
//	s2bench -exp all       # every table/figure (JSON experiments stay opt-in)
//
// -smoke shrinks the JSON experiments to seconds-scale harness checks (tiny
// row counts) so CI catches benchmark bit-rot without paying full bench
// cost. Under -smoke the checked-in artifact is not overwritten: the JSON
// is written only where -out points explicitly (CI uploads those
// smoke-scale artifacts). -list prints the JSON experiment names, one per
// line, so CI can verify its smoke matrix covers every experiment.
//
// Absolute numbers are laptop-scale; compare shapes against the paper (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"s2db/internal/baseline"
	"s2db/internal/blob"
	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/workload/chbench"
	"s2db/internal/workload/tpcc"
	"s2db/internal/workload/tpch"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, figure4, figure5, table3, veccache, groupcommit, merge, wscache, sqlplan, kernels, transport, restore, qos, all")
	out := flag.String("out", "", "output path for a JSON experiment (default BENCH_PR<n>.json; required under -smoke to write anything)")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	warehouses := flag.Int("warehouses", 2, "TPC-C warehouses")
	duration := flag.Duration("duration", 3*time.Second, "per-measurement duration")
	seed := flag.Int64("seed", 1, "data generation seed")
	smoke := flag.Bool("smoke", false, "harness smoke test: tiny row counts; writes JSON only where -out points")
	list := flag.Bool("list", false, "print the JSON experiment names, one per line, and exit")
	flag.Parse()

	// The JSON experiments write artifacts, so they run only when asked for
	// explicitly (not under -exp all). Under -smoke the default artifact
	// path is suppressed so a smoke run never overwrites the checked-in
	// full-scale results; CI passes -out to collect smoke artifacts.
	jsonExps := []struct {
		name       string
		defaultOut string
		fn         func(path string, smoke bool) error
	}{
		{"veccache", "BENCH_PR2.json", veccacheBench},
		{"groupcommit", "BENCH_PR3.json", func(path string, smoke bool) error {
			return groupCommitBench(path, *duration, smoke)
		}},
		{"merge", "BENCH_PR4.json", mergeBench},
		{"wscache", "BENCH_PR5.json", wscacheBench},
		{"sqlplan", "BENCH_PR6.json", sqlplanBench},
		{"kernels", "BENCH_PR7.json", func(path string, smoke bool) error {
			return kernelsBench(path, *sf, *seed, smoke)
		}},
		{"transport", "BENCH_PR8.json", func(path string, smoke bool) error {
			return transportBench(path, *duration, smoke)
		}},
		{"restore", "BENCH_PR9.json", restoreBench},
		{"qos", "BENCH_PR10.json", qosBench},
	}
	if *list {
		for _, e := range jsonExps {
			fmt.Println(e.name)
		}
		return
	}
	for _, e := range jsonExps {
		if *exp != e.name {
			continue
		}
		path := *out
		if path == "" && !*smoke {
			path = e.defaultOut
		}
		if err := e.fn(path, *smoke); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, f func() error) {
		switch *exp {
		case name, "all":
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}
	run("table1", func() error { return table1(*warehouses, *duration, *seed) })
	run("table2", func() error { return table2(*sf, *seed) })
	run("figure4", func() error { return figure4(*sf, *seed) })
	run("figure5", func() error { return figure5(*warehouses, *sf, *duration, *seed) })
	run("table3", func() error { return table3(*warehouses, *duration, *seed) })
}

func newS2TpccBackend(warehouses int, withBlob bool, seed int64) (*tpcc.S2Backend, error) {
	cfg := cluster.Config{
		Partitions: 2,
		Table:      core.Config{MaxSegmentRows: 4096, FlushThreshold: 4096, Background: true},
	}
	if withBlob {
		cfg.Blob = blob.NewMemory()
		cfg.ChunkRecords = 256
		cfg.SnapshotEvery = 1 << 20
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	b := &tpcc.S2Backend{C: c}
	if err := tpcc.Load(b, warehouses, seed); err != nil {
		c.Close()
		return nil, err
	}
	return b, nil
}

// table1 prints the TPC-C comparison (paper Table 1). Like the official
// benchmark, workers pace themselves with keying/think times, so the
// metric is "percent of the wait-time-limited ceiling" — the paper's Table
// 1 shows both engines at ~97% of max; engine cost differences only show
// once think time stops dominating.
func table1(warehouses int, d time.Duration, seed int64) error {
	const thinkScale = 5.0
	// Expected think per transaction: the profile-weighted keying/think
	// times of the driver (§ driver.go), scaled.
	expThink := thinkScale * (0.45*18 + 0.43*15 + 0.04*(12+7+7)) / 1000 // seconds
	const workers = 4
	ceiling := 0.45 * workers / expThink * 60 // max NewOrders/minute
	fmt.Println("== Table 1: TPC-C results (derived benchmark, simulator scale) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Product\tWarehouses\tWorkers\tTpmC\t% of max\tRaw txn/s (no think)")
	type row struct {
		name string
		wh   int
		back tpcc.Backend
		stop func()
	}
	var rows []row
	cdb := &tpcc.RowDBBackend{DB: baseline.NewRowDB()}
	if err := tpcc.Load(cdb, warehouses, seed); err != nil {
		return err
	}
	rows = append(rows, row{"CDB (rowstore)", warehouses, cdb, func() {}})
	s2a, err := newS2TpccBackend(warehouses, false, seed)
	if err != nil {
		return err
	}
	rows = append(rows, row{"S2DB (unified)", warehouses, s2a, func() { s2a.C.Close() }})
	s2b, err := newS2TpccBackend(warehouses*4, false, seed)
	if err != nil {
		return err
	}
	rows = append(rows, row{"S2DB (unified, 4x warehouses+workers)", warehouses * 4, s2b, func() { s2b.C.Close() }})
	for ri, r := range rows {
		rowWorkers := workers
		rowCeiling := ceiling
		if ri == 2 { // the scaled configuration gets proportional compute
			rowWorkers = workers * 4
			rowCeiling = ceiling * 4
		}
		// Paced run: reproduces the paper's at-the-ceiling comparison.
		paced, err := tpcc.Run(r.back, tpcc.DriverConfig{
			Warehouses: r.wh, Workers: rowWorkers, Duration: d, Seed: seed + 7,
			ThinkTime: thinkScale,
		})
		if err != nil {
			return fmt.Errorf("%s: %w (mix %+v)", r.name, err, paced.Mix)
		}
		// Unpaced run: raw engine throughput.
		raw, err := tpcc.Run(r.back, tpcc.DriverConfig{
			Warehouses: r.wh, Workers: rowWorkers, Duration: d, Seed: seed + 77,
		})
		r.stop()
		if err != nil {
			return fmt.Errorf("%s: %w (mix %+v)", r.name, err, raw.Mix)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.1f%%\t%.0f\n", r.name, r.wh, rowWorkers,
			paced.TpmC, 100*paced.TpmC/rowCeiling,
			float64(raw.TotalTxns)/raw.Duration.Seconds())
	}
	w.Flush()
	fmt.Println("(paper shape: both engines near the wait-time ceiling at equal scale;")
	fmt.Println(" S2DB keeps scaling with warehouses)")
	fmt.Println()
	return nil
}

type tpchEngines struct {
	s2      *tpch.S2Engine
	cdw     *tpch.WarehouseEngine
	cdb     *tpch.RowEngine
	cleanup func()
}

func buildTpch(sf float64, seed int64) (*tpchEngines, error) {
	c, err := cluster.New(cluster.Config{Partitions: 2, Table: core.Config{MaxSegmentRows: 4096}})
	if err != nil {
		return nil, err
	}
	if err := tpch.Generate(&tpch.S2Loader{C: c}, sf, seed); err != nil {
		return nil, err
	}
	w, err := baseline.NewWarehouse(baseline.WarehouseConfig{Partitions: 2, Table: core.Config{MaxSegmentRows: 4096}})
	if err != nil {
		return nil, err
	}
	if err := tpch.Generate(&tpch.WarehouseLoader{W: w}, sf, seed); err != nil {
		return nil, err
	}
	db := baseline.NewRowDB()
	if err := tpch.Generate(&tpch.RowLoader{DB: db}, sf, seed); err != nil {
		return nil, err
	}
	return &tpchEngines{
		s2:      &tpch.S2Engine{C: c},
		cdw:     &tpch.WarehouseEngine{W: w},
		cdb:     &tpch.RowEngine{DB: db},
		cleanup: func() { c.Close(); w.Close() },
	}, nil
}

// table2 prints the TPC-H summary (paper Table 2).
func table2(sf float64, seed int64) error {
	fmt.Printf("== Table 2: TPC-H (SF %g) summary ==\n", sf)
	engines, err := buildTpch(sf, seed)
	if err != nil {
		return err
	}
	defer engines.cleanup()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Product\tGeomean\tSuite time\tThroughput (q/s)")
	report := func(name string, e tpch.Engine, budget time.Duration) {
		// One cold pass (compilation/caching in the paper; decode caches and
		// allocator warmup here), then measure a warm pass — the paper's
		// methodology ("one cold run ... then the average of warm runs").
		if _, ok := tpch.RunAllTimeout(e, budget); !ok {
			fmt.Fprintf(w, "%s\tdid not finish within %v\t-\t-\n", name, budget)
			return
		}
		start := time.Now()
		results, finished := tpch.RunAllTimeout(e, budget)
		total := time.Since(start)
		if !finished {
			fmt.Fprintf(w, "%s\tdid not finish within %v\t-\t-\n", name, budget)
			return
		}
		g, _ := tpch.Geomean(results)
		fmt.Fprintf(w, "%s\t%v\t%v\t%.2f\n", name, g.Round(time.Microsecond),
			total.Round(time.Millisecond), 22/total.Seconds())
	}
	report("S2DB", engines.s2, time.Hour)
	report("CDW (warehouse)", engines.cdw, time.Hour)
	// The CDB budget mirrors the paper's 24h cap: proportional to the
	// columnar engines' runtime.
	start := time.Now()
	tpch.RunAll(engines.s2)
	budget := time.Since(start) * 10
	report("CDB (rowstore)", engines.cdb, budget)
	w.Flush()
	fmt.Println("(paper shape: S2DB ~= CDW1/CDW2; CDB orders of magnitude slower / DNF)")
	fmt.Println()
	return nil
}

// figure4 prints per-query runtimes (paper Figure 4).
func figure4(sf float64, seed int64) error {
	fmt.Printf("== Figure 4: TPC-H (SF %g) per-query runtimes ==\n", sf)
	engines, err := buildTpch(sf, seed)
	if err != nil {
		return err
	}
	defer engines.cleanup()
	tpch.RunAll(engines.s2) // cold pass
	tpch.RunAll(engines.cdw)
	s2 := tpch.RunAll(engines.s2) // warm measurements
	cdw := tpch.RunAll(engines.cdw)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Query\tS2DB\tCDW\tS2DB/CDW")
	for i := range s2 {
		if s2[i].Err != nil || cdw[i].Err != nil {
			fmt.Fprintf(w, "%s\terror\terror\t-\n", s2[i].Name)
			continue
		}
		ratio := float64(s2[i].Duration) / float64(cdw[i].Duration)
		fmt.Fprintf(w, "%s\t%v\t%v\t%.2f\n", s2[i].Name,
			s2[i].Duration.Round(time.Microsecond),
			cdw[i].Duration.Round(time.Microsecond), ratio)
	}
	w.Flush()
	fmt.Println("(paper shape: the two columnar engines are competitive query by query)")
	fmt.Println()
	return nil
}

// figure5 prints the cross-engine OLTP/OLAP summary (paper Figure 5).
func figure5(warehouses int, sf float64, d time.Duration, seed int64) error {
	fmt.Println("== Figure 5: TPC-C and TPC-H throughput summary ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Product\tTPC-C TpmC\tTPC-H q/s")

	// S2DB runs both.
	s2t, err := newS2TpccBackend(warehouses, false, seed)
	if err != nil {
		return err
	}
	tRes, err := tpcc.Run(s2t, tpcc.DriverConfig{Warehouses: warehouses, Workers: 4, Duration: d, Seed: seed})
	s2t.C.Close()
	if err != nil {
		return err
	}
	engines, err := buildTpch(sf, seed)
	if err != nil {
		return err
	}
	defer engines.cleanup()
	start := time.Now()
	tpch.RunAll(engines.s2)
	s2QPS := 22 / time.Since(start).Seconds()
	fmt.Fprintf(w, "S2DB\t%.0f\t%.2f\n", tRes.TpmC, s2QPS)

	// CDW: analytics only.
	start = time.Now()
	tpch.RunAll(engines.cdw)
	cdwQPS := 22 / time.Since(start).Seconds()
	fmt.Fprintf(w, "CDW (warehouse)\tunsupported\t%.2f\n", cdwQPS)

	// CDB: OLTP strong, analytics weak.
	cdb := &tpcc.RowDBBackend{DB: baseline.NewRowDB()}
	if err := tpcc.Load(cdb, warehouses, seed); err != nil {
		return err
	}
	cRes, err := tpcc.Run(cdb, tpcc.DriverConfig{Warehouses: warehouses, Workers: 4, Duration: d, Seed: seed})
	if err != nil {
		return err
	}
	start = time.Now()
	tpch.RunAll(engines.cdb)
	cdbQPS := 22 / time.Since(start).Seconds()
	fmt.Fprintf(w, "CDB (rowstore)\t%.0f\t%.2f\n", cRes.TpmC, cdbQPS)
	w.Flush()
	fmt.Println("(paper shape: only S2DB is strong on both axes)")
	fmt.Println()
	return nil
}

// table3 prints the CH-BenCHmark mixed-workload matrix (paper Table 3).
func table3(warehouses int, d time.Duration, seed int64) error {
	fmt.Println("== Table 3: CH-BenCHmark results ==")
	// The paper runs cases 1-3 on one 16-vCPU workspace and cases 4-5 with
	// a second 16-vCPU read-only workspace (32 total); the MaxProcs budget
	// mirrors that compute split at simulator scale.
	cases := []struct {
		name      string
		tws, aws  int
		workspace bool
		withBlob  bool
		procs     int
	}{
		{"1: TWs only", 4, 0, false, true, 4},
		{"2: AWs only", 0, 2, false, true, 4},
		{"3: shared workspace", 4, 2, false, true, 4},
		{"4: isolated read-only workspace", 4, 2, true, true, 8},
		{"5: isolated workspace, no blob", 4, 2, true, false, 8},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Case\tvCPU\tTWs\tAWs\tTpmC\tAnalytic q/s\tMax repl lag (records)")
	for _, tc := range cases {
		back, err := newS2TpccBackend(warehouses, tc.withBlob, seed)
		if err != nil {
			return err
		}
		res := chbench.Run(back, chbench.Config{
			Warehouses:   warehouses,
			TWs:          tc.tws,
			AWs:          tc.aws,
			UseWorkspace: tc.workspace,
			Duration:     d,
			Seed:         seed + 13,
			MaxProcs:     tc.procs,
		})
		back.C.Close()
		if res.Err != nil {
			return fmt.Errorf("case %q: %w", tc.name, res.Err)
		}
		tpmc := "-"
		if tc.tws > 0 {
			tpmc = fmt.Sprintf("%.0f", res.TpmC)
		}
		qps := "-"
		if tc.aws > 0 {
			qps = fmt.Sprintf("%.2f", res.QPS)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\t%s\t%.0f\n", tc.name, tc.procs*4, tc.tws, tc.aws, tpmc, qps, res.MaxLagMs)
	}
	w.Flush()
	fmt.Println("(paper shape: sharing costs ~50% each; isolation restores TW throughput;")
	fmt.Println(" disabling blob staging changes results only marginally)")
	if runtime.NumCPU() < 8 {
		fmt.Printf("NOTE: this host has %d CPU(s); cases 4-5 cannot add physical compute,\n", runtime.NumCPU())
		fmt.Println("so the paper's TW-throughput recovery (which needs a second set of hosts)")
		fmt.Println("is not observable here — replication overhead shares the same core(s).")
		fmt.Println("The reproducible sub-shapes on this host: case 3's mutual degradation,")
		fmt.Println("case 5 ~= case 4, and small replication lag.")
	}
	fmt.Println()
	return nil
}
