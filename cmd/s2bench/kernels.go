package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"s2db"
	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/workload/tpch"
)

// kernelsBench measures the fused encoded-execution kernels (PR 7): the
// same aggregation shapes run against two identically-loaded databases,
// one with the fused kernels on (the default) and one with the ablation
// knob DisableFusedKernels set, which restores the three-pass
// filter→materialize→accumulate pipeline. Shapes cover the kernel
// dispatch matrix — RLE runs at several filter selectivities, dictionary
// group-by in code space, bit-packed high-cardinality columns, float
// accumulation, and the metadata-only COUNT(*) — so the JSON shows where
// single-pass execution pays and where the dispatcher correctly declines.
//
// Acceptance: the RLE and dictionary shapes must show >= 1.5x; the
// closing TPC-H section reruns the Table 2 warm geomean fused vs unfused
// to show the end-to-end win on real query plans.
//
// Results land in BENCH_PR7.json. smoke shrinks rows/samples, drops the
// TPC-H scale factor, and skips the JSON artifact.
func kernelsBench(out string, sf float64, seed int64, smoke bool) error {
	rows, samples, warmups := 150_000, 30, 3
	if smoke {
		rows, samples, warmups = 4_000, 3, 1
		if sf > 0.005 {
			sf = 0.005
		}
	}

	open := func(disable bool) (*s2db.DB, error) {
		db, err := s2db.Open(s2db.Config{
			Partitions:          2,
			MaxSegmentRows:      8192,
			DisableFusedKernels: disable,
		})
		if err != nil {
			return nil, err
		}
		schema := s2db.NewSchema(
			s2db.Column{Name: "id", Type: s2db.Int64T},
			s2db.Column{Name: "cat", Type: s2db.StringT},
			s2db.Column{Name: "status", Type: s2db.StringT},
			s2db.Column{Name: "val", Type: s2db.Int64T},
			s2db.Column{Name: "score", Type: s2db.Float64T},
			s2db.Column{Name: "hi", Type: s2db.Int64T},
		)
		schema.UniqueKey = []int{0}
		schema.ShardKey = []int{0}
		schema.SecondaryKeys = [][]int{{1}}
		schema.SortKey = 3 // val: bulk-loaded segments carry long RLE runs
		if err := db.CreateTable("events", schema); err != nil {
			db.Close()
			return nil, err
		}
		cats := []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"}
		data := make([]s2db.Row, rows)
		for i := range data {
			data[i] = s2db.Row{
				s2db.Int(int64(i)),
				s2db.Str(cats[i%len(cats)]),
				s2db.Str(fmt.Sprintf("s%d", i%3)),
				s2db.Int(int64(i / 64)), // runs of 64 in sort order
				s2db.Float(float64(i%500) * 0.25),
				s2db.Int(int64(i * 7919 % 1000003)), // high cardinality: bit-packed
			}
		}
		if err := db.BulkLoad("events", data); err != nil {
			db.Close()
			return nil, err
		}
		return db, nil
	}

	fused, err := open(false)
	if err != nil {
		return err
	}
	defer fused.Close()
	unfused, err := open(true)
	if err != nil {
		return err
	}
	defer unfused.Close()

	maxVal := int64(rows / 64)
	sel := func(frac float64) s2db.Filter {
		cut := int64(float64(maxVal) * (1 - frac))
		return s2db.GeName("val", s2db.Int(cut))
	}
	type shape struct {
		name       string
		acceptance bool // part of the >=1.5x RLE/dict acceptance set
		run        func(db *s2db.DB) error
	}
	agg := func(f s2db.Filter, groups []string, aggs ...s2db.Agg) func(db *s2db.DB) error {
		return func(db *s2db.DB) error {
			q := db.Table("events")
			if f != nil {
				q = q.Where(f)
			}
			if len(groups) > 0 {
				q = q.GroupByNames(groups...)
			}
			_, err := q.Agg(aggs...).Rows()
			return err
		}
	}
	shapes := []shape{
		{"rle sum, no filter", true, agg(nil, nil, s2db.SumName("val"), s2db.CountAll())},
		{"rle sum, 50% range", true, agg(sel(0.5), nil, s2db.SumName("val"), s2db.CountAll())},
		{"rle sum, 10% range", true, agg(sel(0.1), nil, s2db.SumName("val"), s2db.CountAll())},
		{"rle sum, 1% range", true, agg(sel(0.01), nil, s2db.SumName("val"), s2db.CountAll())},
		{"dict group-by, no filter", true, agg(nil, []string{"cat"}, s2db.CountAll(), s2db.SumName("val"))},
		// Adversarial, not acceptance: status cycles with period 3, so the
		// selection fragments into 2-row spans and both modes pay the same
		// per-row predicate; fusion's win shrinks to the unboxed adds.
		{"dict group-by, fragmented dict filter", false, agg(s2db.GtName("status", s2db.Str("s0")), []string{"cat"}, s2db.CountAll(), s2db.SumName("score"))},
		{"two-dict group-by", false, agg(sel(0.5), []string{"cat", "status"}, s2db.CountAll(), s2db.SumName("val"))},
		{"float min/max/avg, 10% range", false, agg(sel(0.1), nil, s2db.MinName("score"), s2db.MaxName("score"), s2db.AvgName("score"))},
		{"bitpacked sum, 10% range", false, agg(sel(0.1), nil, s2db.SumName("hi"))},
		{"fast count(*)", false, func(db *s2db.DB) error {
			_, err := db.Table("events").Count()
			return err
		}},
	}

	// nanos[shape][mode 0=fused 1=unfused]; modes interleave per sample so
	// ambient noise lands on both equally.
	modes := []*s2db.DB{fused, unfused}
	nanos := make([][2]int64, len(shapes))
	for si, s := range shapes {
		for _, db := range modes {
			for i := 0; i < warmups; i++ {
				if err := s.run(db); err != nil {
					return fmt.Errorf("%s: %w", s.name, err)
				}
			}
		}
		for i := 0; i < samples; i++ {
			for mi, db := range modes {
				start := time.Now()
				if err := s.run(db); err != nil {
					return fmt.Errorf("%s: %w", s.name, err)
				}
				nanos[si][mi] += time.Since(start).Nanoseconds()
			}
		}
	}

	type shapeResult struct {
		Name       string  `json:"name"`
		FusedNs    int64   `json:"fused_ns_per_query"`
		UnfusedNs  int64   `json:"unfused_ns_per_query"`
		Speedup    float64 `json:"speedup"`
		Acceptance bool    `json:"acceptance_shape"`
	}
	results := make([]shapeResult, len(shapes))
	geo, accMin := 0.0, math.Inf(1)
	for si, s := range shapes {
		f := nanos[si][0] / int64(samples)
		u := nanos[si][1] / int64(samples)
		r := shapeResult{Name: s.name, FusedNs: f, UnfusedNs: u,
			Speedup: float64(u) / float64(f), Acceptance: s.acceptance}
		results[si] = r
		geo += math.Log(r.Speedup)
		if s.acceptance && r.Speedup < accMin {
			accMin = r.Speedup
		}
	}
	geo = math.Exp(geo / float64(len(shapes)))

	fmt.Printf("kernels: %d rows, %d samples/shape\n", rows, samples)
	fmt.Printf("%-30s %12s %12s %9s\n", "shape", "fused", "unfused", "speedup")
	for _, r := range results {
		mark := " "
		if r.Acceptance {
			mark = "*"
		}
		fmt.Printf("%-30s %10dns %10dns %8.2fx %s\n", r.Name, r.FusedNs, r.UnfusedNs, r.Speedup, mark)
	}
	fmt.Printf("geomean speedup = %.2fx; min over * acceptance shapes = %.2fx (target >= 1.5x)\n", geo, accMin)

	// TPC-H Table 2 rerun: the same data and queries as -exp table2, fused
	// vs the DisableFusedKernels ablation. Each mode gets its own fresh
	// cluster and the per-query time is the minimum over several warm
	// passes — single warm passes on a loaded box swing 3-4x, which is
	// noise, not signal. The suite is join-heavy, so the geomean moves
	// modestly; the per-query report shows where fusion lands
	// (aggregation-dominated queries like Q1/Q6).
	tpchRounds := 3
	if smoke {
		tpchRounds = 1
	}
	// One cluster alive at a time (two live engines contend on the shared
	// decoded-vector cache), alternating modes across rounds so that slow
	// drift in box load hits both modes evenly; min across rounds absorbs
	// load spikes.
	tpchPass := func(disable bool, min []time.Duration) ([]time.Duration, error) {
		c, err := cluster.New(cluster.Config{
			Partitions: 2,
			Table:      core.Config{MaxSegmentRows: 4096, DisableFusedKernels: disable},
		})
		if err != nil {
			return nil, err
		}
		defer c.Close()
		if err := tpch.Generate(&tpch.S2Loader{C: c}, sf, seed); err != nil {
			return nil, err
		}
		e := &tpch.S2Engine{C: c}
		tpch.RunAll(e) // cold pass: decode caches and allocator warmup
		for w := 0; w < 2; w++ {
			res := tpch.RunAll(e)
			if min == nil {
				min = make([]time.Duration, len(res))
				for i := range min {
					min[i] = time.Duration(1<<63 - 1)
				}
			}
			for i := range res {
				if res[i].Err != nil {
					return nil, res[i].Err
				}
				if res[i].Duration < min[i] {
					min[i] = res[i].Duration
				}
			}
		}
		return min, nil
	}
	var fusedQ, unfusedQ []time.Duration
	for r := 0; r < tpchRounds; r++ {
		var err error
		if fusedQ, err = tpchPass(false, fusedQ); err != nil {
			return err
		}
		if unfusedQ, err = tpchPass(true, unfusedQ); err != nil {
			return err
		}
	}
	type tpchQuery struct {
		Name      string  `json:"name"`
		FusedNs   int64   `json:"fused_ns"`
		UnfusedNs int64   `json:"unfused_ns"`
		Speedup   float64 `json:"speedup"`
	}
	tpchQueries := make([]tpchQuery, len(fusedQ))
	gf, gu := 0.0, 0.0
	for i := range fusedQ {
		tpchQueries[i] = tpchQuery{
			Name: fmt.Sprintf("Q%d", i+1), FusedNs: fusedQ[i].Nanoseconds(),
			UnfusedNs: unfusedQ[i].Nanoseconds(),
			Speedup:   float64(unfusedQ[i]) / float64(fusedQ[i]),
		}
		gf += math.Log(float64(fusedQ[i]))
		gu += math.Log(float64(unfusedQ[i]))
	}
	fusedGeo := time.Duration(math.Exp(gf / float64(len(fusedQ))))
	unfusedGeo := time.Duration(math.Exp(gu / float64(len(unfusedQ))))
	tpchSpeedup := float64(unfusedGeo) / float64(fusedGeo)
	fmt.Printf("tpch (sf %g, min over %d alternating rounds): geomean fused %v, unfused %v (%.2fx)\n",
		sf, tpchRounds, fusedGeo.Round(time.Microsecond), unfusedGeo.Round(time.Microsecond), tpchSpeedup)
	for _, q := range tpchQueries {
		if q.Speedup >= 1.3 || q.Speedup <= 0.77 {
			fmt.Printf("  %-4s fused %-12v unfused %-12v %.2fx\n", q.Name,
				time.Duration(q.FusedNs).Round(time.Microsecond),
				time.Duration(q.UnfusedNs).Round(time.Microsecond), q.Speedup)
		}
	}

	if out == "" {
		fmt.Println("smoke mode: skipping JSON artifact")
		return nil
	}
	report := struct {
		Bench          string        `json:"bench"`
		Rows           int           `json:"rows"`
		Samples        int           `json:"samples"`
		Shapes         []shapeResult `json:"shapes"`
		GeomeanSpeedup float64       `json:"geomean_speedup"`
		AcceptanceMin  float64       `json:"acceptance_min_speedup"`
		TpchSF         float64       `json:"tpch_sf"`
		TpchFusedNs    int64         `json:"tpch_fused_geomean_ns"`
		TpchUnfusedNs  int64         `json:"tpch_unfused_geomean_ns"`
		TpchSpeedup    float64       `json:"tpch_geomean_speedup"`
		TpchQueries    []tpchQuery   `json:"tpch_queries"`
	}{
		Bench: "kernels", Rows: rows, Samples: samples, Shapes: results,
		GeomeanSpeedup: geo, AcceptanceMin: accMin,
		TpchSF: sf, TpchFusedNs: fusedGeo.Nanoseconds(),
		TpchUnfusedNs: unfusedGeo.Nanoseconds(), TpchSpeedup: tpchSpeedup,
		TpchQueries: tpchQueries,
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
