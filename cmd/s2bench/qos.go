package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"s2db"
)

// qosBench measures multi-tenant admission-control isolation (PR 10): a
// well-behaved "oltp" tenant runs a small zone-mapped hot query while an
// adversarial "analytics" tenant floods the engine with concurrent
// full-table aggregates from many goroutines. Three phases:
//
//   - unloaded: QoS on, no adversary — the victim's baseline latency;
//   - flood/qos: QoS on with TenantShares pinning most of the worker pool
//     to the victim — the adversary is throttled to its slice and excess
//     queries shed with a typed ErrOverloaded, so the victim's p99 stays
//     within the isolation bound;
//   - flood/no-qos: Config.DisableQoS — every adversary query runs
//     unbounded and the victim's tail degrades with the flood.
//
// Unlike the cache-isolation bench (wscache), the flood here is genuinely
// concurrent: admission control exists exactly to referee simultaneous
// demand, so interleaving would measure nothing. The adversary deliberately
// ignores most of each retry-after hint it is handed (capping its backoff
// at ten milliseconds) — isolation must not depend on the noisy tenant
// being polite.
//
// The wall-clock p99 bound needs real parallel capacity to mean anything:
// admission control governs who is *admitted*, but on a single-core host
// the one adversary scan the governor does admit timeshares the only CPU
// with the victim, so the victim's tail rides the scheduler's preemption
// quantum (~10ms slices) no matter how admission decides — run-to-run it
// is a scheduler lottery for governed and ungoverned alike. The acceptance
// therefore adapts: with GOMAXPROCS >= 2 the victim's p99 must stay within
// 1.3x of unloaded; on one core the stable claims carry the bound — the
// victim's p50 stays within 1.3x and the governor's own accounting shows
// the victim never queued in admission (zero waits, zero sheds), which is
// precisely the isolation the governor owns. The JSON records the core
// count and which bound applied.
//
// Results land in BENCH_PR10.json. smoke shrinks the table and sample
// count; the artifact is written whenever an output path is supplied.
func qosBench(out string, smoke bool) error {
	rows, samples, warmups := 120_000, 150, 10
	adversaries := 12
	if smoke {
		rows, samples, warmups = 8_000, 12, 2
		adversaries = 4
	}
	workerSlots := 8
	shares := map[string]float64{"oltp": 0.7, "analytics": 0.1}

	type result struct {
		Name          string  `json:"name"`
		Samples       int     `json:"samples"`
		P50Ms         float64 `json:"victim_p50_ms"`
		P99Ms         float64 `json:"victim_p99_ms"`
		MaxMs         float64 `json:"victim_max_ms"`
		FloodQueries  int64   `json:"flood_queries_completed"`
		FloodSheds    int64   `json:"flood_sheds"`
		VictimSheds   int64   `json:"victim_sheds"`
		VictimQoSWait int64   `json:"victim_admission_waits"`
	}

	schema := s2db.NewSchema(
		s2db.Column{Name: "id", Type: s2db.Int64T},
		s2db.Column{Name: "kind", Type: s2db.StringT},
		s2db.Column{Name: "amount", Type: s2db.Int64T},
		s2db.Column{Name: "score", Type: s2db.Float64T},
	)
	schema.SortKey = 0
	schema.ShardKey = []int{0}

	setup := func(disableQoS bool) (*s2db.DB, error) {
		db, err := s2db.Open(s2db.Config{
			Partitions:     4,
			MaxSegmentRows: 4096,
			TenantShares:   shares,
			DisableQoS:     disableQoS,
			QoSWorkerSlots: workerSlots,
			QoSQueueDepth:  2,
		})
		if err != nil {
			return nil, err
		}
		if err := db.CreateTable("events", schema); err != nil {
			db.Close()
			return nil, err
		}
		batch := make([]s2db.Row, 0, rows)
		for i := 0; i < rows; i++ {
			batch = append(batch, s2db.Row{
				s2db.Int(int64(i)),
				s2db.Str(fmt.Sprintf("kind-%02d", i%17)),
				s2db.Int(int64(i % 1000)),
				s2db.Float(float64(i) * 0.5),
			})
		}
		if err := db.BulkLoad("events", batch); err != nil {
			db.Close()
			return nil, err
		}
		return db, nil
	}

	victimQuery := func(db *s2db.DB) error {
		_, err := db.Table("events").AsTenant("oltp").
			Where(s2db.LtName("id", s2db.Int(int64(rows/8)))).
			GroupByNames("kind").
			Agg(s2db.CountAll(), s2db.SumName("amount")).
			Rows()
		return err
	}

	// measure runs one phase: optionally start the adversary flood, then
	// sample the victim query. It reports the victim's latency
	// distribution and the flood's completed/shed counters.
	measure := func(name string, db *s2db.DB, flood bool) (result, error) {
		res := result{Name: name}
		var stop atomic.Bool
		var completed, sheds, badShed atomic.Int64
		var wg sync.WaitGroup
		if flood {
			for i := 0; i < adversaries; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						_, err := db.Table("events").AsTenant("analytics").
							GroupByNames("kind").
							Agg(s2db.CountAll(), s2db.SumName("amount"), s2db.AvgName("score")).
							Rows()
						switch {
						case err == nil:
							completed.Add(1)
						case errors.Is(err, s2db.ErrOverloaded):
							sheds.Add(1)
							retry := s2db.QoSRetryAfter(err)
							if retry <= 0 {
								badShed.Add(1)
							}
							// An adversarial tenant ignores backoff
							// guidance: honor at most a sliver of the
							// hint so the flood pressure never lets up.
							if retry > 10*time.Millisecond {
								retry = 10 * time.Millisecond
							}
							time.Sleep(retry)
						default:
							badShed.Add(1)
						}
					}
				}()
			}
			// Let the flood reach steady state before sampling.
			time.Sleep(100 * time.Millisecond)
		}
		var durs []time.Duration
		var victimErr error
		for i := 0; i < warmups+samples; i++ {
			start := time.Now()
			if err := victimQuery(db); err != nil {
				victimErr = fmt.Errorf("%s victim query: %w", name, err)
				break
			}
			if i >= warmups {
				durs = append(durs, time.Since(start))
			}
		}
		stop.Store(true)
		wg.Wait()
		if victimErr != nil {
			return res, victimErr
		}
		if bad := badShed.Load(); bad > 0 {
			return res, fmt.Errorf("%s: %d flood errors were not typed ErrOverloaded with a positive retry-after", name, bad)
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		res.Samples = len(durs)
		res.P50Ms = ms(durs[len(durs)/2])
		res.P99Ms = ms(durs[int(float64(len(durs)-1)*0.99)])
		res.MaxMs = ms(durs[len(durs)-1])
		res.FloodQueries = completed.Load()
		res.FloodSheds = sheds.Load()
		if ts, ok := db.QoSStats()["oltp"]; ok {
			res.VictimSheds = ts.TotalSheds()
			res.VictimQoSWait = ts.Workers.Waits + ts.ScanMem.Waits
		}
		fmt.Printf("%-16s p50 %7.3fms  p99 %7.3fms  max %7.3fms  (%d samples, flood: %d done, %d shed)\n",
			name, res.P50Ms, res.P99Ms, res.MaxMs, res.Samples, res.FloodQueries, res.FloodSheds)
		return res, nil
	}

	govDB, err := setup(false)
	if err != nil {
		return err
	}
	defer govDB.Close()
	rawDB, err := setup(true)
	if err != nil {
		return err
	}
	defer rawDB.Close()

	// Drain post-load background work before timing anything.
	time.Sleep(500 * time.Millisecond)
	runtime.GC()

	unloaded, err := measure("unloaded", govDB, false)
	if err != nil {
		return err
	}
	flooded, err := measure("flood/qos", govDB, true)
	if err != nil {
		return err
	}
	unbounded, err := measure("flood/no-qos", rawDB, true)
	if err != nil {
		return err
	}

	ratioQoS := flooded.P99Ms / unloaded.P99Ms
	ratioRaw := unbounded.P99Ms / unloaded.P99Ms
	ratioP50 := flooded.P50Ms / unloaded.P50Ms
	cores := runtime.GOMAXPROCS(0)
	isolated := ratioQoS <= 1.3
	bound := "p99 <= 1.3x unloaded"
	if cores < 2 {
		isolated = ratioP50 <= 1.3 && flooded.VictimQoSWait == 0 && flooded.VictimSheds == 0
		bound = "single core: p50 <= 1.3x unloaded and victim never queued in admission"
	}
	fmt.Printf("victim vs unloaded: p50 %.2fx, p99 %.2fx qos / %.2fx no-qos (flood sheds: %d typed, victim sheds: %d)\n",
		ratioP50, ratioQoS, ratioRaw, flooded.FloodSheds, flooded.VictimSheds)
	fmt.Printf("isolation bound [%s] on %d core(s): %v\n", bound, cores, isolated)

	payload := map[string]any{
		"benchmark":     "multi-tenant QoS admission-control isolation (PR 10)",
		"command":       "s2bench -exp qos",
		"rows":          rows,
		"worker_slots":  workerSlots,
		"tenant_shares": shares,
		"adversaries":   adversaries,
		"gomaxprocs":    cores,
		"benchmarks":    []result{unloaded, flooded, unbounded},
		"victim_ratio_vs_unloaded": map[string]float64{
			"qos_p50":    ratioP50,
			"qos_p99":    ratioQoS,
			"no_qos_p99": ratioRaw,
		},
		"qos_stats": govDB.QoSStats(),
		"acceptance": map[string]any{
			"isolation_bound":                   bound,
			"isolation_bound_holds":             isolated,
			"no_qos_degrades_more":              ratioRaw > ratioQoS,
			"flood_shed_typed_with_retry_after": flooded.FloodSheds > 0,
			"victim_never_shed":                 flooded.VictimSheds == 0,
		},
	}

	if smoke {
		if flooded.FloodQueries+flooded.FloodSheds == 0 || unbounded.FloodQueries == 0 {
			return fmt.Errorf("smoke: flood produced no traffic (qos %d+%d, no-qos %d)",
				flooded.FloodQueries, flooded.FloodSheds, unbounded.FloodQueries)
		}
	}
	if out == "" {
		fmt.Println("smoke mode: harness OK, JSON artifact not written")
		return nil
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
