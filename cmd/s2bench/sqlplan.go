package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"s2db"
)

// sqlplanBench measures what the parameterized plan cache buys the SQL
// front-end (PR 6). Three ways to run the same query shapes:
//
//   - native: the Go fluent builder, constructed fresh per call — the
//     floor, since it pays no SQL text handling at all;
//   - cached: SQL text with `?` binds through a warm plan cache — after
//     the first call every preparation is an exact-text tier hit, so only
//     bind validation and execution run;
//   - parse: the same SQL against a DB opened with PlanCacheEntries=0 —
//     the ablation, paying lex+parse+lower on every call.
//
// The acceptance shape: cached amortized latency within 1.1x of native and
// below parse-every-time. Both DBs hold identical data; samples interleave
// round-robin across modes so ambient noise lands on every mode equally.
//
// Results land in BENCH_PR6.json. smoke shrinks rows and samples and skips
// the JSON artifact.
func sqlplanBench(out string, smoke bool) error {
	rows, samples, warmups := 4_000, 400, 20
	if smoke {
		rows, samples, warmups = 500, 10, 2
	}

	open := func(planCacheEntries int) (*s2db.DB, error) {
		db, err := s2db.Open(s2db.Config{
			Partitions:       2,
			PlanCacheEntries: planCacheEntries,
			MaxSegmentRows:   1024,
		})
		if err != nil {
			return nil, err
		}
		schema := s2db.NewSchema(
			s2db.Column{Name: "id", Type: s2db.Int64T},
			s2db.Column{Name: "category", Type: s2db.StringT},
			s2db.Column{Name: "quantity", Type: s2db.Int64T},
			s2db.Column{Name: "price", Type: s2db.Float64T},
		)
		schema.UniqueKey = []int{0}
		schema.ShardKey = []int{0}
		schema.SecondaryKeys = [][]int{{1}}
		if err := db.CreateTable("orders", schema); err != nil {
			db.Close()
			return nil, err
		}
		cats := []string{"books", "games", "tools", "music"}
		data := make([]s2db.Row, rows)
		for i := range data {
			data[i] = s2db.Row{
				s2db.Int(int64(i)),
				s2db.Str(cats[i%len(cats)]),
				s2db.Int(int64(i % 7)),
				s2db.Float(float64(i%90) + 0.5),
			}
		}
		if err := db.BulkLoad("orders", data); err != nil {
			db.Close()
			return nil, err
		}
		return db, nil
	}

	cached, err := open(s2db.DefaultPlanCacheEntries)
	if err != nil {
		return err
	}
	defer cached.Close()
	nocache, err := open(0)
	if err != nil {
		return err
	}
	defer nocache.Close()

	type shape struct {
		name    string
		sql     string
		binds   []s2db.Value
		builder func(db *s2db.DB) *s2db.Query
	}
	shapes := []shape{
		{
			name:  "secondary key equality",
			sql:   "SELECT * FROM orders WHERE category = ?",
			binds: []s2db.Value{s2db.Str("books")},
			builder: func(db *s2db.DB) *s2db.Query {
				return db.Table("orders").Where(s2db.EqName("category", s2db.Str("books")))
			},
		},
		{
			name:  "range scan",
			sql:   "SELECT * FROM orders WHERE quantity < ?",
			binds: []s2db.Value{s2db.Int(2)},
			builder: func(db *s2db.DB) *s2db.Query {
				return db.Table("orders").Where(s2db.LtName("quantity", s2db.Int(2)))
			},
		},
		{
			name:  "compound and/or",
			sql:   "SELECT * FROM orders WHERE (category = ? AND quantity >= ?) OR price > ?",
			binds: []s2db.Value{s2db.Str("games"), s2db.Int(5), s2db.Float(88.0)},
			builder: func(db *s2db.DB) *s2db.Query {
				return db.Table("orders").Where(s2db.Or(
					s2db.And(s2db.EqName("category", s2db.Str("games")), s2db.GeName("quantity", s2db.Int(5))),
					s2db.GtName("price", s2db.Float(88.0)),
				))
			},
		},
		{
			name:  "in list",
			sql:   "SELECT * FROM orders WHERE category IN (?, ?)",
			binds: []s2db.Value{s2db.Str("tools"), s2db.Str("music")},
			builder: func(db *s2db.DB) *s2db.Query {
				return db.Table("orders").Where(s2db.InName("category", s2db.Str("tools"), s2db.Str("music")))
			},
		},
		{
			name:  "point lookup order limit",
			sql:   "SELECT * FROM orders WHERE id = ? ORDER BY id LIMIT 1",
			binds: []s2db.Value{s2db.Int(int64(rows / 2))},
			builder: func(db *s2db.DB) *s2db.Query {
				return db.Table("orders").Where(s2db.EqName("id", s2db.Int(int64(rows/2)))).
					OrderBy(s2db.Asc("id")).Limit(1)
			},
		},
		{
			name: "group by aggregates",
			sql:  "SELECT category, count(*), sum(quantity), avg(price) FROM orders GROUP BY category",
			builder: func(db *s2db.DB) *s2db.Query {
				return db.Table("orders").GroupByNames("category").
					Agg(s2db.CountAll(), s2db.SumName("quantity"), s2db.AvgName("price"))
			},
		},
		{
			name:  "global aggregate",
			sql:   "SELECT count(*), max(price) FROM orders WHERE quantity = ?",
			binds: []s2db.Value{s2db.Int(3)},
			builder: func(db *s2db.DB) *s2db.Query {
				return db.Table("orders").Where(s2db.EqName("quantity", s2db.Int(3))).
					Agg(s2db.CountAll(), s2db.MaxName("price"))
			},
		},
		{
			name:  "top-k order by",
			sql:   "SELECT * FROM orders WHERE price >= ? ORDER BY price DESC, id ASC LIMIT 25",
			binds: []s2db.Value{s2db.Float(60.0)},
			builder: func(db *s2db.DB) *s2db.Query {
				return db.Table("orders").Where(s2db.GeName("price", s2db.Float(60.0))).
					OrderBy(s2db.Desc("price"), s2db.Asc("id")).Limit(25)
			},
		},
	}

	type mode struct {
		name string
		run  func(s shape) error
	}
	modes := []mode{
		{"native", func(s shape) error {
			_, err := s.builder(cached).Rows()
			return err
		}},
		{"cached", func(s shape) error {
			_, err := cached.Query(s.sql, s.binds...)
			return err
		}},
		{"parse", func(s shape) error {
			_, err := nocache.Query(s.sql, s.binds...)
			return err
		}},
	}

	// nanos[shape][mode] accumulates total time; round-robin across modes
	// inside each sample so noise is shared.
	nanos := make([][]int64, len(shapes))
	for si, s := range shapes {
		nanos[si] = make([]int64, len(modes))
		for _, m := range modes {
			for i := 0; i < warmups; i++ {
				if err := m.run(s); err != nil {
					return fmt.Errorf("%s/%s: %w", s.name, m.name, err)
				}
			}
		}
		for i := 0; i < samples; i++ {
			for mi, m := range modes {
				start := time.Now()
				if err := m.run(s); err != nil {
					return fmt.Errorf("%s/%s: %w", s.name, m.name, err)
				}
				nanos[si][mi] += time.Since(start).Nanoseconds()
			}
		}
	}

	type shapeResult struct {
		Name           string  `json:"name"`
		SQL            string  `json:"sql"`
		NativeNs       int64   `json:"native_ns_per_query"`
		CachedNs       int64   `json:"cached_ns_per_query"`
		ParseNs        int64   `json:"parse_ns_per_query"`
		CachedVsNative float64 `json:"cached_vs_native"`
		ParseVsCached  float64 `json:"parse_vs_cached"`
	}
	results := make([]shapeResult, len(shapes))
	geoCachedVsNative, geoParseVsCached := 0.0, 0.0
	for si, s := range shapes {
		native := nanos[si][0] / int64(samples)
		cachedNs := nanos[si][1] / int64(samples)
		parse := nanos[si][2] / int64(samples)
		r := shapeResult{
			Name: s.name, SQL: s.sql,
			NativeNs: native, CachedNs: cachedNs, ParseNs: parse,
			CachedVsNative: float64(cachedNs) / float64(native),
			ParseVsCached:  float64(parse) / float64(cachedNs),
		}
		results[si] = r
		geoCachedVsNative += math.Log(r.CachedVsNative)
		geoParseVsCached += math.Log(r.ParseVsCached)
	}
	geoCachedVsNative = math.Exp(geoCachedVsNative / float64(len(shapes)))
	geoParseVsCached = math.Exp(geoParseVsCached / float64(len(shapes)))

	stats := cached.PlanCacheStats()
	report := struct {
		Bench             string        `json:"bench"`
		Rows              int           `json:"rows"`
		Samples           int           `json:"samples"`
		Shapes            []shapeResult `json:"shapes"`
		GeoCachedVsNative float64       `json:"geomean_cached_vs_native"`
		GeoParseVsCached  float64       `json:"geomean_parse_vs_cached"`
		PlanCacheHits     int64         `json:"plan_cache_hits"`
		PlanCacheTextHits int64         `json:"plan_cache_text_hits"`
		PlanCacheMisses   int64         `json:"plan_cache_misses"`
		HitRate           float64       `json:"plan_cache_hit_rate"`
	}{
		Bench: "sqlplan", Rows: rows, Samples: samples, Shapes: results,
		GeoCachedVsNative: geoCachedVsNative,
		GeoParseVsCached:  geoParseVsCached,
		PlanCacheHits:     stats.Hits,
		PlanCacheTextHits: stats.TextHits,
		PlanCacheMisses:   stats.Misses,
		HitRate:           stats.HitRate(),
	}

	fmt.Printf("sqlplan: %d rows, %d samples/shape\n", rows, samples)
	fmt.Printf("%-26s %12s %12s %12s %8s %8s\n", "shape", "native", "cached", "parse", "c/n", "p/c")
	for _, r := range results {
		fmt.Printf("%-26s %10dns %10dns %10dns %7.3fx %7.3fx\n",
			r.Name, r.NativeNs, r.CachedNs, r.ParseNs, r.CachedVsNative, r.ParseVsCached)
	}
	fmt.Printf("geomean cached/native = %.3fx (acceptance: <= 1.1x)\n", geoCachedVsNative)
	fmt.Printf("geomean parse/cached  = %.3fx (acceptance: > 1x)\n", geoParseVsCached)
	fmt.Printf("plan cache: %d hits (%d text) / %d misses, hit rate %.4f\n",
		stats.Hits, stats.TextHits, stats.Misses, stats.HitRate())

	if out == "" {
		fmt.Println("smoke mode: skipping JSON artifact")
		return nil
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
